// Package service turns the run pipeline (internal/run) into an online
// HTTP/JSON API: a bounded job queue with a worker pool built on
// runner.Map, a tiered content-addressed result store (in-memory LRU over
// an optional disk store, internal/store) with singleflight-style
// deduplication of identical submissions, a batch sweep endpoint that fans
// a spec template across a parameter grid, a resilience layer
// (internal/policy: per-client rate limiting with honest Retry-After and a
// circuit breaker guarding the execute stage), load shedding with 429 +
// Retry-After under overload, live Prometheus metrics, and a
// deadline-bounded graceful drain mirroring the shutdown discipline of
// internal/rt. Determinism of the underlying simulations (enforced by the
// internal/runner harness) is what makes serving a cached Report for a
// request digest correct: equal digests provably yield byte-identical
// reports.
package service

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"hcperf/internal/policy"
	"hcperf/internal/run"
	"hcperf/internal/runner"
	"hcperf/internal/search"
	"hcperf/internal/store"
)

// Sentinel errors Submit maps to HTTP statuses.
var (
	// ErrQueueFull is returned when the bounded submission queue cannot
	// take another job; handlers translate it to 429 + Retry-After.
	ErrQueueFull = errors.New("service: submission queue full")
	// ErrDraining is returned once shutdown has begun; handlers
	// translate it to 503.
	ErrDraining = errors.New("service: draining, not accepting new runs")
)

// JobState is the lifecycle of one submitted run.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: executing on a worker.
	StateRunning JobState = "running"
	// StateDone: finished successfully; Result is set.
	StateDone JobState = "done"
	// StateFailed: finished with an error; Err is set.
	StateFailed JobState = "failed"
	// StateCancelled: shutdown hit the drain deadline before the job
	// ran (or while a ctx-aware run was in flight).
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one content-addressed run. ID is the request digest, so any two
// jobs with the same ID are the same computation.
type Job struct {
	// ID is the canonical request digest.
	ID string
	// Req is the normalized request.
	Req RunRequest

	// seq is the submission order number, drawn from the manager's
	// atomic counter; queue position is the count of still-queued jobs
	// with a smaller seq.
	seq uint64

	// source records where the job's result materialized in this process:
	// TierMemory for runs computed here, TierDisk for results restored
	// from the disk store. Set once the job is terminal with a result;
	// meaningless (zero) before then and for failed runs.
	source store.Tier

	mu        sync.Mutex
	state     JobState
	result    *RunResult
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  *search.Progress // optimize jobs: latest generation snapshot

	// done is closed exactly once when the job reaches a terminal
	// state; waiters (tests, long-poll handlers) select on it.
	done chan struct{}
}

// JobSnapshot is a consistent copy of a job's mutable state.
type JobSnapshot struct {
	ID        string
	Req       RunRequest
	State     JobState
	Result    *RunResult
	Err       error
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Progress is the latest generation snapshot of a running optimize
	// job (nil otherwise).
	Progress *search.Progress
	// Source is the tier the result materialized from (memory for runs
	// computed by this process, disk for restored results); empty until
	// the job completes with a result.
	Source store.Tier
}

// Snapshot returns a consistent view of the job.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := JobSnapshot{
		ID: j.ID, Req: j.Req, State: j.state, Result: j.result, Err: j.err,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Source: j.source,
	}
	if j.progress != nil {
		p := *j.progress
		snap.Progress = &p
	}
	return snap
}

// setProgress records an optimize job's latest generation snapshot.
func (j *Job) setProgress(p search.Progress) {
	j.mu.Lock()
	j.progress = &p
	j.mu.Unlock()
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.mu.Unlock()
}

func (j *Job) finish(state JobState, res *RunResult, err error, now time.Time) {
	j.mu.Lock()
	j.state = state
	j.result = res
	j.err = err
	j.finished = now
	j.mu.Unlock()
	close(j.done)
}

// SubmitOutcome says how a submission was satisfied.
type SubmitOutcome int

const (
	// SubmitNew: a fresh execution was queued.
	SubmitNew SubmitOutcome = iota
	// SubmitDeduped: an identical run is already queued or running; the
	// submission was coalesced onto it.
	SubmitDeduped
	// SubmitCached: an identical run already completed and is resident in
	// the in-memory result cache.
	SubmitCached
	// SubmitCachedDisk: an identical run completed in an earlier process
	// (or was evicted from memory) and was restored from the disk store.
	SubmitCachedDisk
)

// Tier maps a submission outcome to the store tier that satisfied it —
// the value of the X-HCPerf-Cache response header and the `cache` field of
// the submission response.
func (o SubmitOutcome) Tier() store.Tier {
	switch o {
	case SubmitCached:
		return store.TierMemory
	case SubmitCachedDisk:
		return store.TierDisk
	default:
		return store.TierMiss
	}
}

// ManagerConfig sizes the job manager.
type ManagerConfig struct {
	// Workers is the execution pool size (default 2).
	Workers int
	// QueueSize bounds the submission queue (default 64); a full queue
	// sheds load with ErrQueueFull.
	QueueSize int
	// CacheSize bounds the completed-run LRU (default 128), split across
	// the shards; evicted runs re-execute on resubmission.
	CacheSize int
	// Shards is the number of digest-partitioned shards the job map and
	// result LRU are split into (default 8). Each shard has its own
	// mutex, so submissions for different digests never contend; tests
	// that assert global LRU recency order use Shards: 1. Recency (and
	// therefore eviction) is tracked per shard: the CacheSize bound is
	// divided evenly, so the global bound holds to within rounding.
	Shards int
	// Run executes one request (default Execute). Tests inject
	// controllable fakes here.
	Run RunFunc
	// Metrics receives operational counters (default a fresh set).
	Metrics *Metrics
	// Disk is the persistent result tier under the in-memory cache; nil
	// (the default) runs memory-only, exactly the pre-disk-store
	// behavior.
	Disk *store.Disk
	// Breaker, when non-nil, guards the execute stage: jobs reaching a
	// worker while the breaker is open fail fast (and are forgotten, so
	// a resubmission re-executes once the stage recovers), and every
	// execution outcome feeds the breaker's sliding error window.
	Breaker *policy.Breaker
}

// shard is one digest partition of the job map: its own mutex, its own
// slice of the jobs map and its own recency LRU, so the mutex a
// submission takes depends only on its digest.
type shard struct {
	mu    sync.Mutex
	jobs  map[string]*Job // every known job in this partition
	cache *store.LRU      // recency order over terminal jobs only
}

// Manager owns the submission queue, the worker pool, and the
// content-addressed result cache. The job map and LRU are partitioned
// into digest-addressed shards; within one shard a single mutex covers
// map and LRU together, so the singleflight invariant — at most one live
// job per digest — holds by construction exactly as it did under the
// former global mutex, while submissions for different digests no longer
// serialize on one lock.
type Manager struct {
	run     RunFunc
	metrics *Metrics
	disk    *store.Disk     // nil = memory-only
	breaker *policy.Breaker // nil = unguarded

	baseCtx context.Context
	cancel  context.CancelFunc

	shards []shard
	queue  chan *Job
	seq    atomic.Uint64 // submission counter; orders queue positions

	// lifeMu serializes queue sends against close(queue): submissions
	// hold it shared around {draining check, queue send}, Shutdown holds
	// it exclusively around {draining = true, close}. Lock order is
	// shard.mu → lifeMu; Shutdown takes lifeMu alone.
	lifeMu   sync.RWMutex
	draining bool

	wg sync.WaitGroup
}

// NewManager starts the worker pool.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueSize < 1 {
		cfg.QueueSize = 64
	}
	if cfg.CacheSize < 1 {
		cfg.CacheSize = 128
	}
	if cfg.Shards < 1 {
		cfg.Shards = 8
	}
	if cfg.Run == nil {
		cfg.Run = Execute
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	if cfg.Disk != nil {
		// The disk tier counts into the same metrics set as the memory
		// tier, so /metrics shows one coherent tiered store.
		cfg.Disk.SetMetrics(cfg.Metrics.Store)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		run:     cfg.Run,
		metrics: cfg.Metrics,
		disk:    cfg.Disk,
		breaker: cfg.Breaker,
		baseCtx: ctx,
		cancel:  cancel,
		shards:  make([]shard, cfg.Shards),
		queue:   make(chan *Job, cfg.QueueSize),
	}
	// Split the cache bound across shards, rounding up so the configured
	// capacity is never undershot.
	perShard := (cfg.CacheSize + cfg.Shards - 1) / cfg.Shards
	for i := range m.shards {
		m.shards[i].jobs = make(map[string]*Job)
		m.shards[i].cache = store.NewLRU(perShard)
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// shardFor maps a digest to its partition. Digests are uniform SHA-256
// hex, but fnv keeps the mapping well-distributed for any test-injected
// ID shape.
func (m *Manager) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &m.shards[h.Sum32()%uint32(len(m.shards))]
}

// Metrics exposes the manager's counters for the /metrics handler.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Breaker exposes the execute-stage circuit breaker (nil when disabled)
// for the /metrics handler.
func (m *Manager) Breaker() *policy.Breaker { return m.breaker }

// QueueDepth is the number of jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// CacheLen is the number of terminal runs retained across the shard LRUs.
func (m *Manager) CacheLen() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += sh.cache.Len()
		sh.mu.Unlock()
	}
	return n
}

// Job looks up a run by digest.
func (m *Manager) Job(id string) (*Job, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j, ok := sh.jobs[id]
	return j, ok
}

// QueuePosition returns how many jobs are ahead of id in the submission
// queue (0 = next to run), or -1 when the job is unknown or no longer
// queued. Position is derived from submission order, so it only ever
// shrinks as the pool drains: shards are scanned one at a time, and a job
// observed as no-longer-queued in a later scan can only lower the count
// (queued → running is a one-way door).
func (m *Manager) QueuePosition(id string) int {
	j, ok := m.Job(id)
	if !ok || j.Snapshot().State != StateQueued {
		return -1
	}
	pos := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, other := range sh.jobs {
			if other != j && other.seq < j.seq && other.Snapshot().State == StateQueued {
				pos++
			}
		}
		sh.mu.Unlock()
	}
	return pos
}

// Submit routes one normalized request: identical to a cached terminal run
// → that run (LRU refreshed); identical to a queued/running run → that run
// (singleflight dedup); persisted by an earlier process → a terminal job
// restored from the disk store; otherwise a fresh job, unless the queue is
// full (ErrQueueFull) or the manager is draining (ErrDraining).
func (m *Manager) Submit(req RunRequest) (*Job, SubmitOutcome, error) {
	id := req.Digest()
	sh := m.shardFor(id)
	sh.mu.Lock()
	if j, outcome, hit := m.lookupLocked(sh, id); hit {
		sh.mu.Unlock()
		return j, outcome, nil
	}
	m.metrics.Store.MemoryMisses.Add(1)
	sh.mu.Unlock()

	// Disk tier, outside the shard mutex: reading an entry is file I/O
	// and must not stall status polls. Serving a persisted result is not
	// new work, so it is allowed even while draining.
	if res, ok := run.LoadDisk(m.disk, id); ok {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if j, outcome, hit := m.lookupLocked(sh, id); hit {
			// Raced with an identical submission; defer to its job.
			return j, outcome, nil
		}
		return m.installTerminalLocked(sh, id, req, res, store.TierDisk), SubmitCachedDisk, nil
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if j, outcome, hit := m.lookupLocked(sh, id); hit {
		// Raced with an identical submission while we checked the disk.
		return j, outcome, nil
	}
	// The queue send happens under lifeMu (shared) so it can never race
	// Shutdown's close(queue).
	m.lifeMu.RLock()
	if m.draining {
		m.lifeMu.RUnlock()
		m.metrics.Rejected.Add(1)
		return nil, 0, ErrDraining
	}
	j := &Job{ID: id, Req: req, seq: m.seq.Add(1), state: StateQueued, submitted: time.Now(), done: make(chan struct{})}
	select {
	case m.queue <- j:
	default:
		m.lifeMu.RUnlock()
		m.metrics.Shed.Add(1)
		return nil, 0, ErrQueueFull
	}
	m.lifeMu.RUnlock()
	sh.jobs[id] = j
	m.metrics.Misses.Add(1)
	return j, SubmitNew, nil
}

// lookupLocked resolves a digest against the in-memory tier: a terminal
// job is a memory cache hit, a live one coalesces the submission. The
// caller holds sh's mutex.
func (m *Manager) lookupLocked(sh *shard, id string) (*Job, SubmitOutcome, bool) {
	j, ok := sh.jobs[id]
	if !ok {
		return nil, 0, false
	}
	if j.Snapshot().State.Terminal() {
		sh.cache.Bump(id)
		m.metrics.CacheHits.Add(1)
		m.metrics.Store.MemoryHits.Add(1)
		return j, SubmitCached, true
	}
	m.metrics.DedupHits.Add(1)
	return j, SubmitDeduped, true
}

// installTerminalLocked enters an already-completed result (restored from
// disk, or computed by a sweep worker) as a terminal job so subsequent
// GETs and submissions see it as an ordinary cached run. The caller holds
// sh's mutex.
func (m *Manager) installTerminalLocked(sh *shard, id string, req RunRequest, res *RunResult, source store.Tier) *Job {
	now := time.Now()
	j := &Job{
		ID: id, Req: req, seq: m.seq.Add(1), source: source,
		state: StateDone, result: res,
		submitted: now, started: now, finished: now,
		done: make(chan struct{}),
	}
	close(j.done)
	sh.jobs[id] = j
	m.addToCacheLocked(sh, id)
	return j
}

// AddCached publishes a result computed outside the worker pool (a sweep
// cell) under its digest. An existing job for the digest wins — the caller
// raced with an ordinary submission — and is returned unchanged.
func (m *Manager) AddCached(req RunRequest, res *RunResult, source store.Tier) *Job {
	if source == store.TierMiss {
		// A freshly computed result is memory-resident from here on.
		source = store.TierMemory
	}
	id := req.Digest()
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if j, ok := sh.jobs[id]; ok {
		return j
	}
	return m.installTerminalLocked(sh, id, req, res, source)
}

// CachedResult resolves a digest against the in-memory tier only: the
// result of a successfully completed resident job (recency refreshed), or
// a miss. It is the memory-tier Lookup of sweep pipelines; counting is
// left to the pipeline so submission metrics stay comparable.
func (m *Manager) CachedResult(id string) (*RunResult, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j, ok := sh.jobs[id]
	if !ok {
		return nil, false
	}
	snap := j.Snapshot()
	if snap.State != StateDone || snap.Result == nil {
		return nil, false
	}
	sh.cache.Bump(id)
	return snap.Result, true
}

// addToCacheLocked enters a terminal digest into the shard's LRU; evicted
// digests drop out of the job map entirely, so a resubmission re-executes
// (or restores from disk). The caller holds sh's mutex.
func (m *Manager) addToCacheLocked(sh *shard, id string) {
	for _, evicted := range sh.cache.Add(id) {
		delete(sh.jobs, evicted)
		m.metrics.Store.MemoryEvictions.Add(1)
	}
}

// forget drops a job from its shard without touching the LRU — used for
// breaker fast-fails, which must leave no cached trace so the identical
// request re-executes once the stage recovers.
func (m *Manager) forget(id string) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	delete(sh.jobs, id)
	sh.mu.Unlock()
}

// worker drains the queue until it closes. Each job runs through
// runner.Map, which contributes two properties for free: a panicking
// experiment is captured as that job's error instead of killing the pool,
// and a cancelled base context (drain deadline) fails queued jobs without
// starting them.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *Job) {
	// The circuit breaker guards the execute stage only: cached results
	// and disk restores never pass through here. A fast-failed job is
	// forgotten (not cached), so clients polling its ID see it vanish and
	// a resubmission re-executes once the breaker admits traffic again.
	var breakerDone func(policy.Outcome)
	if m.breaker != nil {
		var berr error
		breakerDone, berr = m.breaker.Allow()
		if berr != nil {
			j.finish(StateFailed, nil, berr, time.Now())
			m.forget(j.ID)
			return
		}
	}

	start := time.Now()
	j.setRunning(start)
	m.metrics.InFlight.Add(1)
	ctx := m.baseCtx
	if j.Req.Optimize != nil {
		// OnProgress fires on the evaluating goroutine, one generation at
		// a time, so the previous-snapshot state needs no lock.
		var prev search.Progress
		ctx = run.WithProgress(ctx, func(p search.Progress) {
			m.metrics.ObserveOptimize(p, prev)
			prev = p
			j.setProgress(p)
		})
	}
	results, err := runner.Map(ctx, 1, []RunRequest{j.Req}, m.run)
	m.metrics.InFlight.Add(-1)
	elapsed := time.Since(start)
	policy.Observe(breakerDone, err)

	state := StateDone
	var res *RunResult
	switch {
	case err == nil:
		res = results[0]
		m.metrics.Completed.Add(1)
		m.metrics.ObserveLatency(j.Req.Kind(), elapsed.Seconds())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state = StateCancelled
		m.metrics.Cancelled.Add(1)
	default:
		state = StateFailed
		m.metrics.Failed.Add(1)
	}
	if state == StateDone {
		j.mu.Lock()
		j.source = store.TierMemory
		j.mu.Unlock()
	}
	j.finish(state, res, err, time.Now())

	if state == StateDone {
		// Persist the completed run so it survives restarts and memory
		// eviction. Best-effort: a full or lost volume costs persistence,
		// never the run.
		_ = run.SaveDisk(m.disk, j.ID, res)
	}

	// Enter the terminal job into the LRU; evicted digests drop out of
	// the job map entirely, so a resubmission re-executes.
	sh := m.shardFor(j.ID)
	sh.mu.Lock()
	m.addToCacheLocked(sh, j.ID)
	sh.mu.Unlock()
}

// Shutdown stops accepting new runs, lets the workers drain the queue, and
// waits for them until ctx expires. Past the deadline the base context is
// cancelled — queued jobs then fail fast with StateCancelled via
// runner.Map's dispatch check, and Shutdown returns ctx.Err() without
// waiting on any CPU-bound run already in flight (mirroring the bounded
// Shutdown of internal/rt). Shutdown is idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.lifeMu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.lifeMu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.cancel()
		return nil
	case <-ctx.Done():
		m.cancel()
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun (used by /healthz).
func (m *Manager) Draining() bool {
	m.lifeMu.RLock()
	defer m.lifeMu.RUnlock()
	return m.draining
}
