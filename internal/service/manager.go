// Package service turns the run pipeline (internal/run) into an online
// HTTP/JSON API: a bounded job queue with a worker pool built on
// runner.Map, a tiered content-addressed result store (in-memory LRU over
// an optional disk store, internal/store) with singleflight-style
// deduplication of identical submissions, a batch sweep endpoint that fans
// a spec template across a parameter grid, load shedding with 429 +
// Retry-After under overload, live Prometheus metrics, and a
// deadline-bounded graceful drain mirroring the shutdown discipline of
// internal/rt. Determinism of the underlying simulations (enforced by the
// internal/runner harness) is what makes serving a cached Report for a
// request digest correct: equal digests provably yield byte-identical
// reports.
package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"hcperf/internal/run"
	"hcperf/internal/runner"
	"hcperf/internal/search"
	"hcperf/internal/store"
)

// Sentinel errors Submit maps to HTTP statuses.
var (
	// ErrQueueFull is returned when the bounded submission queue cannot
	// take another job; handlers translate it to 429 + Retry-After.
	ErrQueueFull = errors.New("service: submission queue full")
	// ErrDraining is returned once shutdown has begun; handlers
	// translate it to 503.
	ErrDraining = errors.New("service: draining, not accepting new runs")
)

// JobState is the lifecycle of one submitted run.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: executing on a worker.
	StateRunning JobState = "running"
	// StateDone: finished successfully; Result is set.
	StateDone JobState = "done"
	// StateFailed: finished with an error; Err is set.
	StateFailed JobState = "failed"
	// StateCancelled: shutdown hit the drain deadline before the job
	// ran (or while a ctx-aware run was in flight).
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one content-addressed run. ID is the request digest, so any two
// jobs with the same ID are the same computation.
type Job struct {
	// ID is the canonical request digest.
	ID string
	// Req is the normalized request.
	Req RunRequest

	// seq is the submission order number, assigned under the manager's
	// mutex; queue position is the count of still-queued jobs with a
	// smaller seq.
	seq uint64

	// source records where the job's result materialized in this process:
	// TierMemory for runs computed here, TierDisk for results restored
	// from the disk store. Set once the job is terminal with a result;
	// meaningless (zero) before then and for failed runs.
	source store.Tier

	mu        sync.Mutex
	state     JobState
	result    *RunResult
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  *search.Progress // optimize jobs: latest generation snapshot

	// done is closed exactly once when the job reaches a terminal
	// state; waiters (tests, long-poll handlers) select on it.
	done chan struct{}
}

// JobSnapshot is a consistent copy of a job's mutable state.
type JobSnapshot struct {
	ID        string
	Req       RunRequest
	State     JobState
	Result    *RunResult
	Err       error
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Progress is the latest generation snapshot of a running optimize
	// job (nil otherwise).
	Progress *search.Progress
	// Source is the tier the result materialized from (memory for runs
	// computed by this process, disk for restored results); empty until
	// the job completes with a result.
	Source store.Tier
}

// Snapshot returns a consistent view of the job.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := JobSnapshot{
		ID: j.ID, Req: j.Req, State: j.state, Result: j.result, Err: j.err,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Source: j.source,
	}
	if j.progress != nil {
		p := *j.progress
		snap.Progress = &p
	}
	return snap
}

// setProgress records an optimize job's latest generation snapshot.
func (j *Job) setProgress(p search.Progress) {
	j.mu.Lock()
	j.progress = &p
	j.mu.Unlock()
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.mu.Unlock()
}

func (j *Job) finish(state JobState, res *RunResult, err error, now time.Time) {
	j.mu.Lock()
	j.state = state
	j.result = res
	j.err = err
	j.finished = now
	j.mu.Unlock()
	close(j.done)
}

// SubmitOutcome says how a submission was satisfied.
type SubmitOutcome int

const (
	// SubmitNew: a fresh execution was queued.
	SubmitNew SubmitOutcome = iota
	// SubmitDeduped: an identical run is already queued or running; the
	// submission was coalesced onto it.
	SubmitDeduped
	// SubmitCached: an identical run already completed and is resident in
	// the in-memory result cache.
	SubmitCached
	// SubmitCachedDisk: an identical run completed in an earlier process
	// (or was evicted from memory) and was restored from the disk store.
	SubmitCachedDisk
)

// Tier maps a submission outcome to the store tier that satisfied it —
// the value of the X-HCPerf-Cache response header and the `cache` field of
// the submission response.
func (o SubmitOutcome) Tier() store.Tier {
	switch o {
	case SubmitCached:
		return store.TierMemory
	case SubmitCachedDisk:
		return store.TierDisk
	default:
		return store.TierMiss
	}
}

// ManagerConfig sizes the job manager.
type ManagerConfig struct {
	// Workers is the execution pool size (default 2).
	Workers int
	// QueueSize bounds the submission queue (default 64); a full queue
	// sheds load with ErrQueueFull.
	QueueSize int
	// CacheSize bounds the completed-run LRU (default 128); evicted
	// runs re-execute on resubmission.
	CacheSize int
	// Run executes one request (default Execute). Tests inject
	// controllable fakes here.
	Run RunFunc
	// Metrics receives operational counters (default a fresh set).
	Metrics *Metrics
	// Disk is the persistent result tier under the in-memory cache; nil
	// (the default) runs memory-only, exactly the pre-disk-store
	// behavior.
	Disk *store.Disk
}

// Manager owns the submission queue, the worker pool, and the
// content-addressed result cache. All three share one mutex, so the
// singleflight invariant — at most one live job per digest — holds by
// construction.
type Manager struct {
	run     RunFunc
	metrics *Metrics
	disk    *store.Disk // nil = memory-only

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job // every known job: queued, running, and cached terminal
	cache    *store.LRU      // recency order over terminal jobs only
	queue    chan *Job
	seq      uint64 // submission counter; orders queue positions
	draining bool

	wg sync.WaitGroup
}

// NewManager starts the worker pool.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueSize < 1 {
		cfg.QueueSize = 64
	}
	if cfg.CacheSize < 1 {
		cfg.CacheSize = 128
	}
	if cfg.Run == nil {
		cfg.Run = Execute
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	if cfg.Disk != nil {
		// The disk tier counts into the same metrics set as the memory
		// tier, so /metrics shows one coherent tiered store.
		cfg.Disk.SetMetrics(cfg.Metrics.Store)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		run:     cfg.Run,
		metrics: cfg.Metrics,
		disk:    cfg.Disk,
		baseCtx: ctx,
		cancel:  cancel,
		jobs:    make(map[string]*Job),
		cache:   store.NewLRU(cfg.CacheSize),
		queue:   make(chan *Job, cfg.QueueSize),
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Metrics exposes the manager's counters for the /metrics handler.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// QueueDepth is the number of jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// CacheLen is the number of terminal runs retained in the LRU.
func (m *Manager) CacheLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.Len()
}

// Job looks up a run by digest.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// QueuePosition returns how many jobs are ahead of id in the submission
// queue (0 = next to run), or -1 when the job is unknown or no longer
// queued. Position is derived from submission order, so it only ever
// shrinks as the pool drains.
func (m *Manager) QueuePosition(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.Snapshot().State != StateQueued {
		return -1
	}
	pos := 0
	for _, other := range m.jobs {
		if other != j && other.seq < j.seq && other.Snapshot().State == StateQueued {
			pos++
		}
	}
	return pos
}

// Submit routes one normalized request: identical to a cached terminal run
// → that run (LRU refreshed); identical to a queued/running run → that run
// (singleflight dedup); persisted by an earlier process → a terminal job
// restored from the disk store; otherwise a fresh job, unless the queue is
// full (ErrQueueFull) or the manager is draining (ErrDraining).
func (m *Manager) Submit(req RunRequest) (*Job, SubmitOutcome, error) {
	id := req.Digest()
	m.mu.Lock()
	if j, outcome, hit := m.lookupLocked(id); hit {
		m.mu.Unlock()
		return j, outcome, nil
	}
	m.metrics.Store.MemoryMisses.Add(1)
	m.mu.Unlock()

	// Disk tier, outside the mutex: reading an entry is file I/O and must
	// not stall status polls. Serving a persisted result is not new work,
	// so it is allowed even while draining.
	if res, ok := run.LoadDisk(m.disk, id); ok {
		m.mu.Lock()
		defer m.mu.Unlock()
		if j, outcome, hit := m.lookupLocked(id); hit {
			// Raced with an identical submission; defer to its job.
			return j, outcome, nil
		}
		return m.installTerminalLocked(id, req, res, store.TierDisk), SubmitCachedDisk, nil
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if j, outcome, hit := m.lookupLocked(id); hit {
		// Raced with an identical submission while we checked the disk.
		return j, outcome, nil
	}
	if m.draining {
		m.metrics.Rejected.Add(1)
		return nil, 0, ErrDraining
	}
	m.seq++
	j := &Job{ID: id, Req: req, seq: m.seq, state: StateQueued, submitted: time.Now(), done: make(chan struct{})}
	select {
	case m.queue <- j:
	default:
		m.metrics.Shed.Add(1)
		return nil, 0, ErrQueueFull
	}
	m.jobs[id] = j
	m.metrics.Misses.Add(1)
	return j, SubmitNew, nil
}

// lookupLocked resolves a digest against the in-memory tier: a terminal
// job is a memory cache hit, a live one coalesces the submission.
func (m *Manager) lookupLocked(id string) (*Job, SubmitOutcome, bool) {
	j, ok := m.jobs[id]
	if !ok {
		return nil, 0, false
	}
	if j.Snapshot().State.Terminal() {
		m.cache.Bump(id)
		m.metrics.CacheHits.Add(1)
		m.metrics.Store.MemoryHits.Add(1)
		return j, SubmitCached, true
	}
	m.metrics.DedupHits.Add(1)
	return j, SubmitDeduped, true
}

// installTerminalLocked enters an already-completed result (restored from
// disk, or computed by a sweep worker) as a terminal job so subsequent
// GETs and submissions see it as an ordinary cached run.
func (m *Manager) installTerminalLocked(id string, req RunRequest, res *RunResult, source store.Tier) *Job {
	m.seq++
	now := time.Now()
	j := &Job{
		ID: id, Req: req, seq: m.seq, source: source,
		state: StateDone, result: res,
		submitted: now, started: now, finished: now,
		done: make(chan struct{}),
	}
	close(j.done)
	m.jobs[id] = j
	m.addToCacheLocked(id)
	return j
}

// AddCached publishes a result computed outside the worker pool (a sweep
// cell) under its digest. An existing job for the digest wins — the caller
// raced with an ordinary submission — and is returned unchanged.
func (m *Manager) AddCached(req RunRequest, res *RunResult, source store.Tier) *Job {
	if source == store.TierMiss {
		// A freshly computed result is memory-resident from here on.
		source = store.TierMemory
	}
	id := req.Digest()
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j
	}
	return m.installTerminalLocked(id, req, res, source)
}

// CachedResult resolves a digest against the in-memory tier only: the
// result of a successfully completed resident job (recency refreshed), or
// a miss. It is the memory-tier Lookup of sweep pipelines; counting is
// left to the pipeline so submission metrics stay comparable.
func (m *Manager) CachedResult(id string) (*RunResult, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	snap := j.Snapshot()
	if snap.State != StateDone || snap.Result == nil {
		return nil, false
	}
	m.cache.Bump(id)
	return snap.Result, true
}

// addToCacheLocked enters a terminal digest into the LRU; evicted digests
// drop out of the job map entirely, so a resubmission re-executes (or
// restores from disk).
func (m *Manager) addToCacheLocked(id string) {
	for _, evicted := range m.cache.Add(id) {
		delete(m.jobs, evicted)
		m.metrics.Store.MemoryEvictions.Add(1)
	}
}

// worker drains the queue until it closes. Each job runs through
// runner.Map, which contributes two properties for free: a panicking
// experiment is captured as that job's error instead of killing the pool,
// and a cancelled base context (drain deadline) fails queued jobs without
// starting them.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *Job) {
	start := time.Now()
	j.setRunning(start)
	m.metrics.InFlight.Add(1)
	ctx := m.baseCtx
	if j.Req.Optimize != nil {
		// OnProgress fires on the evaluating goroutine, one generation at
		// a time, so the previous-snapshot state needs no lock.
		var prev search.Progress
		ctx = run.WithProgress(ctx, func(p search.Progress) {
			m.metrics.ObserveOptimize(p, prev)
			prev = p
			j.setProgress(p)
		})
	}
	results, err := runner.Map(ctx, 1, []RunRequest{j.Req}, m.run)
	m.metrics.InFlight.Add(-1)
	elapsed := time.Since(start)

	state := StateDone
	var res *RunResult
	switch {
	case err == nil:
		res = results[0]
		m.metrics.Completed.Add(1)
		m.metrics.ObserveLatency(j.Req.Kind(), elapsed.Seconds())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state = StateCancelled
		m.metrics.Cancelled.Add(1)
	default:
		state = StateFailed
		m.metrics.Failed.Add(1)
	}
	if state == StateDone {
		j.mu.Lock()
		j.source = store.TierMemory
		j.mu.Unlock()
	}
	j.finish(state, res, err, time.Now())

	if state == StateDone {
		// Persist the completed run so it survives restarts and memory
		// eviction. Best-effort: a full or lost volume costs persistence,
		// never the run.
		_ = run.SaveDisk(m.disk, j.ID, res)
	}

	// Enter the terminal job into the LRU; evicted digests drop out of
	// the job map entirely, so a resubmission re-executes.
	m.mu.Lock()
	m.addToCacheLocked(j.ID)
	m.mu.Unlock()
}

// Shutdown stops accepting new runs, lets the workers drain the queue, and
// waits for them until ctx expires. Past the deadline the base context is
// cancelled — queued jobs then fail fast with StateCancelled via
// runner.Map's dispatch check, and Shutdown returns ctx.Err() without
// waiting on any CPU-bound run already in flight (mirroring the bounded
// Shutdown of internal/rt). Shutdown is idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.cancel()
		return nil
	case <-ctx.Done():
		m.cancel()
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun (used by /healthz).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}
