package service

import (
	"crypto/sha256"
	"encoding/hex"
	"net"
	"net/http"
	"strconv"
	"strings"

	"hcperf/internal/policy"
)

// PolicyConfig wires the resilience layer into the server: a per-client
// token-bucket rate limiter in front of the submission endpoints and a
// circuit breaker around the execute stage. Both are opt-out/opt-in knobs
// surfaced as hcperf-serve flags.
type PolicyConfig struct {
	// RateLimit is the sustained request rate (requests/second) each
	// client key may spend on the POST endpoints; 0 disables the limiter.
	RateLimit float64
	// RateBurst is the instantaneous burst each key may spend (default
	// 2×RateLimit, minimum 1) — sized so a client paced at the limit never
	// sees a 429 from scheduling jitter alone.
	RateBurst float64
	// NoBreaker disables the execute-stage circuit breaker (it is on by
	// default: an unguarded execute stage turns a sick runner into a pile
	// of queued failures).
	NoBreaker bool
	// Breaker overrides the breaker geometry; zero fields take the
	// policy.BreakerConfig defaults.
	Breaker policy.BreakerConfig
}

// clientKey identifies the caller for rate-limiting. Authenticated clients
// are keyed by their credential — Authorization: Bearer first, then
// X-API-Key — so one tenant cannot starve another from behind a shared
// NAT; anonymous clients fall back to the remote IP. Credentials are
// hashed before use as map keys so a raw secret never sits in limiter
// state (or leaks through a debug dump); the hash is never echoed back to
// the client.
func clientKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok && tok != "" {
			return hashKey("bearer", tok)
		}
	}
	if key := r.Header.Get("X-API-Key"); key != "" {
		return hashKey("apikey", key)
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr // no port (e.g. unix socket): use it whole
	}
	return "addr:" + host
}

func hashKey(kind, secret string) string {
	sum := sha256.Sum256([]byte(secret))
	return kind + ":" + hex.EncodeToString(sum[:8])
}

// limited wraps a handler with the per-client rate limiter. Every response
// — allowed or not — carries the X-RateLimit-* headers so clients can pace
// themselves before hitting the wall; a denial is a 429 whose Retry-After
// is the limiter's exact refill arithmetic rounded up to whole seconds,
// never an optimistic guess.
func (s *Server) limited(next http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		d := s.limiter.Allow(clientKey(r))
		h := w.Header()
		h.Set("X-RateLimit-Limit", strconv.FormatFloat(d.Limit, 'g', -1, 64))
		h.Set("X-RateLimit-Remaining", strconv.Itoa(d.Remaining))
		h.Set("X-RateLimit-Reset", strconv.Itoa(policy.RetryAfterSeconds(d.Reset)))
		if !d.Allowed {
			retry := policy.RetryAfterSeconds(d.RetryAfter)
			h.Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusTooManyRequests,
				"rate limit exceeded (%g req/s, burst %g); retry after %ds", d.Limit, d.Burst, retry)
			return
		}
		next(w, r)
	}
}

// liveStats assembles the scrape-time gauge snapshot for WritePrometheus.
func (s *Server) liveStats() LiveStats {
	live := LiveStats{QueueDepth: s.mgr.QueueDepth(), CacheLen: s.mgr.CacheLen()}
	if s.limiter != nil {
		live.HasLimiter = true
		live.RatelimitAllowed = s.limiter.Allowed()
		live.RatelimitLimited = s.limiter.Limited()
		live.RatelimitKeys = s.limiter.Keys()
	}
	if b := s.mgr.Breaker(); b != nil {
		live.HasBreaker = true
		live.BreakerState = int(b.State())
		live.BreakerOpens = b.Opens()
		live.BreakerShortCircuits = b.ShortCircuits()
	}
	return live
}
