package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"hcperf/internal/experiment"
)

// fakeRunner is a controllable RunFunc: every execution signals started,
// then blocks until Release (or runs straight through if unblocked). It
// counts executions so the singleflight tests can assert "exactly once".
type fakeRunner struct {
	executions atomic.Int64
	started    chan string   // receives the request kind as runs begin
	release    chan struct{} // closed to let blocked runs finish
	blocking   bool
}

func newFakeRunner(blocking bool) *fakeRunner {
	return &fakeRunner{
		started:  make(chan string, 64),
		release:  make(chan struct{}),
		blocking: blocking,
	}
}

func (f *fakeRunner) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	f.executions.Add(1)
	f.started <- req.Kind()
	if f.blocking {
		select {
		case <-f.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &RunResult{Report: &experiment.Report{ID: req.Kind(), Title: "fake", Header: []string{"k", "v"}, Rows: [][]string{{"seed", "1"}}}}, nil
}

func expReq(t *testing.T, seed int64) RunRequest {
	t.Helper()
	req, err := RunRequest{Experiment: "fig5", Seed: seed}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func waitDone(t *testing.T, j *Job) JobSnapshot {
	t.Helper()
	<-j.Done()
	return j.Snapshot()
}

func TestSingleflightConcurrentSubmissions(t *testing.T) {
	f := newFakeRunner(true)
	m := NewManager(ManagerConfig{Workers: 2, QueueSize: 16, Run: f.Run})
	defer m.Shutdown(context.Background())

	req := expReq(t, 1)
	const n = 8
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		jobs = make(map[*Job]int)
		newN atomic.Int64
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			j, outcome, err := m.Submit(req)
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			if outcome == SubmitNew {
				newN.Add(1)
			}
			mu.Lock()
			jobs[j]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got := newN.Load(); got != 1 {
		t.Errorf("SubmitNew count = %d, want 1", got)
	}
	if len(jobs) != 1 {
		t.Errorf("distinct jobs = %d, want 1 (singleflight)", len(jobs))
	}
	close(f.release)
	for j := range jobs {
		if snap := waitDone(t, j); snap.State != StateDone {
			t.Errorf("state = %s, want done", snap.State)
		}
	}
	if got := f.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want exactly 1", got)
	}
	if hits := m.Metrics().DedupHits.Load(); hits != n-1 {
		t.Errorf("dedup hits = %d, want %d", hits, n-1)
	}
}

func TestCacheHitServesCompletedRun(t *testing.T) {
	f := newFakeRunner(false)
	m := NewManager(ManagerConfig{Workers: 1, QueueSize: 4, Run: f.Run})
	defer m.Shutdown(context.Background())

	req := expReq(t, 1)
	j1, outcome, err := m.Submit(req)
	if err != nil || outcome != SubmitNew {
		t.Fatalf("first Submit: outcome=%v err=%v", outcome, err)
	}
	waitDone(t, j1)

	j2, outcome, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmitCached {
		t.Errorf("second Submit outcome = %v, want SubmitCached", outcome)
	}
	if j2 != j1 {
		t.Error("cached submission returned a different job")
	}
	if got := f.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	if hits := m.Metrics().CacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

func TestLRUEvictionRespectsBound(t *testing.T) {
	f := newFakeRunner(false)
	// Shards: 1 — this test asserts global LRU ordering, which only holds
	// when every digest shares one cache shard.
	m := NewManager(ManagerConfig{Workers: 1, QueueSize: 8, CacheSize: 2, Shards: 1, Run: f.Run})
	defer m.Shutdown(context.Background())

	reqs := []RunRequest{expReq(t, 1), expReq(t, 2), expReq(t, 3)}
	for _, req := range reqs {
		j, _, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	if n := m.CacheLen(); n != 2 {
		t.Errorf("CacheLen = %d, want 2", n)
	}
	if _, ok := m.Job(reqs[0].Digest()); ok {
		t.Error("oldest run still resolvable; want evicted")
	}
	for _, req := range reqs[1:] {
		if _, ok := m.Job(req.Digest()); !ok {
			t.Errorf("run %s evicted; want retained", req.Digest()[:8])
		}
	}
	// Resubmitting the evicted run re-executes it.
	j, outcome, err := m.Submit(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmitNew {
		t.Errorf("resubmit outcome = %v, want SubmitNew", outcome)
	}
	waitDone(t, j)
	if got := f.executions.Load(); got != 4 {
		t.Errorf("executions = %d, want 4 (3 distinct + 1 re-run after eviction)", got)
	}
}

func TestLRUBumpOnCacheHit(t *testing.T) {
	f := newFakeRunner(false)
	// Shards: 1 — this test asserts global LRU ordering, which only holds
	// when every digest shares one cache shard.
	m := NewManager(ManagerConfig{Workers: 1, QueueSize: 8, CacheSize: 2, Shards: 1, Run: f.Run})
	defer m.Shutdown(context.Background())

	a, b, c := expReq(t, 1), expReq(t, 2), expReq(t, 3)
	for _, req := range []RunRequest{a, b} {
		j, _, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	// Touch a so b becomes the LRU victim when c lands.
	if _, outcome, err := m.Submit(a); err != nil || outcome != SubmitCached {
		t.Fatalf("bump submit: outcome=%v err=%v", outcome, err)
	}
	j, _, err := m.Submit(c)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if _, ok := m.Job(a.Digest()); !ok {
		t.Error("recently-used run evicted; want retained")
	}
	if _, ok := m.Job(b.Digest()); ok {
		t.Error("least-recently-used run retained; want evicted")
	}
}

func TestQueueFullSheds(t *testing.T) {
	f := newFakeRunner(true)
	m := NewManager(ManagerConfig{Workers: 1, QueueSize: 1, Run: f.Run})
	defer m.Shutdown(context.Background())

	// A occupies the single worker...
	jA, _, err := m.Submit(expReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-f.started // A is running, queue is empty again
	// ...B fills the queue...
	if _, _, err := m.Submit(expReq(t, 2)); err != nil {
		t.Fatal(err)
	}
	// ...so C must be shed.
	_, _, err = m.Submit(expReq(t, 3))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Submit err = %v, want ErrQueueFull", err)
	}
	if shed := m.Metrics().Shed.Load(); shed != 1 {
		t.Errorf("shed = %d, want 1", shed)
	}
	// The shed job left no residue: resubmitting after capacity frees is a
	// fresh run, and the manager is not wedged.
	close(f.release)
	waitDone(t, jA)
	j, outcome, err := m.Submit(expReq(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmitNew {
		t.Errorf("resubmit outcome = %v, want SubmitNew", outcome)
	}
	waitDone(t, j)
}

func TestShutdownDrainsInFlight(t *testing.T) {
	f := newFakeRunner(true)
	m := NewManager(ManagerConfig{Workers: 1, QueueSize: 4, Run: f.Run})

	jA, _, err := m.Submit(expReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-f.started
	jB, _, err := m.Submit(expReq(t, 2)) // still queued behind A
	if err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- m.Shutdown(context.Background()) }()

	// New work is refused once the drain flag is up; spin (no sleeps)
	// until the concurrent Shutdown has set it.
	for !m.Draining() {
		runtime.Gosched()
	}
	if _, _, err := m.Submit(expReq(t, 3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain err = %v, want ErrDraining", err)
	}

	close(f.release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if snap := jA.Snapshot(); snap.State != StateDone {
		t.Errorf("in-flight job state = %s, want done", snap.State)
	}
	if snap := jB.Snapshot(); snap.State != StateDone {
		t.Errorf("queued job state = %s, want done (drained)", snap.State)
	}
}

func TestShutdownDeadlineCancelsQueued(t *testing.T) {
	f := newFakeRunner(true)
	m := NewManager(ManagerConfig{Workers: 1, QueueSize: 4, Run: f.Run})

	jA, _, err := m.Submit(expReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-f.started
	jB, _, err := m.Submit(expReq(t, 2))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already passed
	if err := m.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown err = %v, want context.Canceled", err)
	}

	// The blocked run observes the cancelled base context and aborts;
	// the queued job is failed fast without ever starting.
	if snap := waitDone(t, jA); snap.State != StateCancelled {
		t.Errorf("in-flight job state = %s, want cancelled", snap.State)
	}
	if snap := waitDone(t, jB); snap.State != StateCancelled {
		t.Errorf("queued job state = %s, want cancelled", snap.State)
	}
	if f.executions.Load() != 1 {
		t.Errorf("executions = %d, want 1 (queued job must not start past deadline)", f.executions.Load())
	}
}

func TestShutdownIdempotent(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueSize: 1, Run: newFakeRunner(false).Run})
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(expReq(t, 1)); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit after shutdown err = %v, want ErrDraining", err)
	}
}

func TestPanickingRunIsolated(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueSize: 4, Run: func(context.Context, RunRequest) (*RunResult, error) {
		panic("boom")
	}})
	defer m.Shutdown(context.Background())
	j, _, err := m.Submit(expReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, j)
	if snap.State != StateFailed {
		t.Errorf("state = %s, want failed", snap.State)
	}
	if snap.Err == nil {
		t.Error("panicking run reported no error")
	}
	// The worker survived: a second job still executes.
	j2, _, err := m.Submit(expReq(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitDone(t, j2); snap.State != StateFailed {
		t.Errorf("second job state = %s, want failed (same panicking runner)", snap.State)
	}
}
