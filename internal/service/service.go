package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"hcperf/internal/experiment"
	"hcperf/internal/lifecycle"
	"hcperf/internal/policy"
	"hcperf/internal/scenario"
	"hcperf/internal/search"
	"hcperf/internal/store"
	"hcperf/internal/version"
)

// Config sizes the HTTP server's job manager; see ManagerConfig for the
// field conventions and defaults.
type Config struct {
	Workers   int
	QueueSize int
	CacheSize int
	// Shards partitions the job map and result cache by digest (see
	// ManagerConfig.Shards; default 8).
	Shards int
	// Disk is the persistent result tier shared with the CLI's -store
	// flag; nil runs memory-only.
	Disk *store.Disk
	// Policy configures the resilience layer: per-client rate limiting on
	// the POST endpoints and the execute-stage circuit breaker.
	Policy PolicyConfig
	// Run overrides the execution function (tests only).
	Run RunFunc
}

// Server is the hcperf-serve HTTP API: run submission and retrieval, batch
// sweeps, registry listing, health, metrics and pprof.
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	limiter *policy.Limiter // nil when rate limiting is disabled
	workers int             // sweep fan-out width (same knob as the worker pool)
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	// The breaker is on by default: it guards the execute stage only, so
	// cache and dedup hits keep flowing even while it is open.
	var breaker *policy.Breaker
	if !cfg.Policy.NoBreaker {
		breaker = policy.NewBreaker(cfg.Policy.Breaker)
	}
	s := &Server{
		mgr: NewManager(ManagerConfig{
			Workers:   cfg.Workers,
			QueueSize: cfg.QueueSize,
			CacheSize: cfg.CacheSize,
			Shards:    cfg.Shards,
			Run:       cfg.Run,
			Disk:      cfg.Disk,
			Breaker:   breaker,
		}),
		mux:     http.NewServeMux(),
		workers: cfg.Workers,
	}
	if cfg.Policy.RateLimit > 0 {
		burst := cfg.Policy.RateBurst
		if burst <= 0 {
			burst = 2 * cfg.Policy.RateLimit
		}
		s.limiter = policy.NewLimiter(policy.LimiterConfig{Rate: cfg.Policy.RateLimit, Burst: burst})
	}
	if s.workers < 1 {
		s.workers = 2 // keep in lockstep with NewManager's default
	}
	// Only the submission (POST) endpoints are rate-limited: GETs are
	// cheap map lookups, and limiting /metrics or /healthz would blind the
	// very probes meant to watch an overloaded server.
	s.mux.HandleFunc("POST /v1/runs", s.limited(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleGetTrace)
	s.mux.HandleFunc("POST /v1/optimize", s.limited(s.handleOptimize))
	s.mux.HandleFunc("GET /v1/optimize/{id}", s.handleGetRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.limited(s.handleSweep))
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Everything else gets the same JSON error envelope as handler
	// failures, so clients never have to parse a text/plain 404.
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// handleNotFound is the catch-all route: a uniform JSON 404 for unknown
// paths (the per-resource handlers produce their own JSON 404s for unknown
// IDs).
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "no such endpoint %s %s", r.Method, r.URL.Path)
}

// Handler returns the routed handler (httptest mounts this directly).
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the job manager, e.g. for the drain path in main.
func (s *Server) Manager() *Manager { return s.mgr }

// apiError is the uniform JSON error body every non-2xx response carries.
type apiError struct {
	Error struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	var body apiError
	body.Error.Code = code
	body.Error.Message = fmt.Sprintf(format, args...)
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already written; nothing left to do on error
}

// runStatus is the response body of POST /v1/runs, POST /v1/optimize and
// the corresponding GETs.
type runStatus struct {
	ID      string     `json:"id"`
	State   JobState   `json:"state"`
	Request RunRequest `json:"request"`
	Cached  bool       `json:"cached,omitempty"`
	Deduped bool       `json:"deduped,omitempty"`
	// Submitted is the enqueue timestamp (RFC 3339, UTC).
	Submitted string `json:"submitted,omitempty"`
	// QueuePosition is how many jobs are ahead of this one while it is
	// queued (0 = next to run); absent once it starts. A pointer so that
	// position zero still renders.
	QueuePosition *int    `json:"queue_position,omitempty"`
	ElapsedMS     float64 `json:"elapsed_ms,omitempty"`
	Digest        string  `json:"report_digest,omitempty"`
	// Cache is the result's provenance: "memory" when it was computed or
	// resident in this process, "disk" when it was restored from the
	// persistent store, "miss" on the submission response that scheduled
	// a fresh execution. Absent while the job is queued or running. The
	// same value rides in the X-HCPerf-Cache response header.
	Cache  store.Tier       `json:"cache,omitempty"`
	Report *experiment.View `json:"report,omitempty"`
	// Progress is the latest generation snapshot of a running optimize
	// job; Optimize is the structured search report once it completes.
	Progress *search.Progress `json:"progress,omitempty"`
	Optimize *search.Report   `json:"optimize,omitempty"`
	TraceLen int              `json:"trace_events,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// status renders a job snapshot; includeSeries controls whether the raw
// time series ride along (GET with ?series=1).
func (s *Server) status(snap JobSnapshot, includeSeries bool) runStatus {
	st := runStatus{ID: snap.ID, State: snap.State, Request: snap.Req, Progress: snap.Progress}
	if !snap.Submitted.IsZero() {
		st.Submitted = snap.Submitted.UTC().Format(time.RFC3339Nano)
	}
	if snap.State == StateQueued {
		if pos := s.mgr.QueuePosition(snap.ID); pos >= 0 {
			st.QueuePosition = &pos
		}
	}
	if !snap.Finished.IsZero() && !snap.Started.IsZero() {
		st.ElapsedMS = float64(snap.Finished.Sub(snap.Started)) / float64(time.Millisecond)
	}
	if snap.Err != nil {
		st.Error = snap.Err.Error()
	}
	if snap.Result != nil && snap.Result.Report != nil {
		st.Report = snap.Result.Report.View(includeSeries)
		if d, err := snap.Result.Report.Digest(); err == nil {
			st.Digest = d
		}
		st.Cache = snap.Source
		st.Optimize = snap.Result.Optimize
		st.TraceLen = len(snap.Result.Events)
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	s.submit(w, req)
}

// handleOptimize accepts a bare search.Request body — shorthand for
// POST /v1/runs with {"optimize": ...} — so tuning clients never deal with
// the run-request envelope. The job lands in the same queue, cache and
// digest namespace.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var rq search.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rq); err != nil {
		writeError(w, http.StatusBadRequest, "invalid optimize request body: %v", err)
		return
	}
	s.submit(w, RunRequest{Optimize: &rq})
}

// submit normalizes and routes one request, writing the uniform submission
// response: 202 for new/deduped jobs, 200 when served from cache.
func (s *Server) submit(w http.ResponseWriter, req RunRequest) {
	req, err := req.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	job, outcome, err := s.mgr.Submit(req)
	switch {
	case err == nil:
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err == ErrDraining:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st := s.status(job.Snapshot(), false)
	st.Cached = outcome == SubmitCached || outcome == SubmitCachedDisk
	st.Deduped = outcome == SubmitDeduped
	// The submission response reports which tier satisfied it — "miss"
	// for a fresh (or coalesced in-flight) execution — in both the body
	// and the X-HCPerf-Cache header, so curl -i is enough to check cache
	// provenance.
	st.Cache = outcome.Tier()
	w.Header().Set("X-HCPerf-Cache", string(outcome.Tier()))
	code := http.StatusAccepted
	if st.Cached {
		// The result (or terminal error) is already available.
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q (completed runs may have been evicted from the cache)", r.PathValue("id"))
		return
	}
	includeSeries := r.URL.Query().Get("series") == "1"
	writeJSON(w, http.StatusOK, s.status(job.Snapshot(), includeSeries))
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	snap := job.Snapshot()
	if !snap.State.Terminal() {
		writeError(w, http.StatusConflict, "run %q is %s; trace is available once it completes", snap.ID, snap.State)
		return
	}
	if snap.Result == nil || len(snap.Result.Events) == 0 {
		writeError(w, http.StatusNotFound, "run %q captured no lifecycle trace (submit a scenario run with \"trace\": true)", snap.ID)
		return
	}
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		err = lifecycle.WriteCSV(w, snap.Result.Events)
	case "", "chrome", "json":
		w.Header().Set("Content-Type", "application/json")
		err = lifecycle.WriteChromeTrace(w, snap.Result.Events)
	default:
		writeError(w, http.StatusBadRequest, "unknown trace format %q (want csv or chrome)", format)
		return
	}
	// A write error here means the stream broke mid-body (client went
	// away); the status line is long gone, so there is nothing to send.
	_ = err
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []experiment.Info `json:"experiments"`
		Scenarios   []string          `json:"scenarios"`
	}{
		Experiments: experiment.List(),
		Scenarios:   scenarioList(),
	})
}

// scenarioList returns the scenario run kinds, sorted — the same
// deterministic-listing discipline as the experiment registry.
func scenarioList() []string {
	out := append([]string(nil), scenario.ScenarioNames()...)
	sort.Strings(out)
	return out
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, version.Get())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.mgr.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// The exposition is rendered in one buffer, so a write error means the
	// client went away — nothing to report.
	_ = s.mgr.Metrics().WritePrometheus(w, s.liveStats())
}
