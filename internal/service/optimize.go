package service

import (
	"context"
	"fmt"

	"hcperf/internal/experiment"
	"hcperf/internal/search"
)

// progressKey carries a per-job progress sink through the execution
// context: the manager installs the sink in runJob, and runOptimize hands
// it to search.Run as the OnProgress callback. Progress therefore flows
// Job-ward without the search subsystem knowing about jobs.
type progressKey struct{}

// withProgress attaches a progress sink to ctx.
func withProgress(ctx context.Context, fn func(search.Progress)) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// progressFrom extracts the sink, or nil when none is attached (direct
// Execute calls outside the manager).
func progressFrom(ctx context.Context) func(search.Progress) {
	fn, _ := ctx.Value(progressKey{}).(func(search.Progress))
	return fn
}

// runOptimize executes one normalized optimize request. The search fans its
// candidate evaluations across GOMAXPROCS workers (determinism is
// worker-count independent by the runner harness), and the resulting Pareto
// report is wrapped as an experiment.Report so optimize runs flow through
// the same result cache, digesting and rendering as every other run kind.
func runOptimize(ctx context.Context, req RunRequest) (*RunResult, error) {
	rep, err := req.Optimize.Run(ctx, 0, progressFrom(ctx))
	if err != nil {
		return nil, err
	}
	exp := &experiment.Report{
		ID: "optimize-" + req.Optimize.Spec.Scenario,
		Title: fmt.Sprintf("Coordinator policy search (%s, budget %d, %d seeds)",
			req.Optimize.Strategy, req.Optimize.Budget, req.Optimize.Seeds),
		Header: rep.Header(),
		Rows:   rep.Rows(),
	}
	for _, b := range rep.Best {
		verdict := "no improvement over the paper defaults"
		if b.Improved {
			verdict = fmt.Sprintf("improves on the paper defaults (%s)", fmtBest(b.Baseline))
		}
		exp.Notes = append(exp.Notes, fmt.Sprintf("%s: best %s — %s", b.Objective, fmtBest(b.Value), verdict))
	}
	return &RunResult{Report: exp, Optimize: rep}, nil
}

// fmtBest renders one objective value for the notes.
func fmtBest(v float64) string { return fmt.Sprintf("%.6g", v) }
