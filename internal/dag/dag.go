// Package dag models autonomous-driving task graphs: periodic real-time
// tasks with static priorities, relative deadlines and precedence edges
// forming a directed acyclic graph, exactly the system model of HCPerf
// §III-A.
//
// Source tasks (no incoming edges) are the sensing tasks; they release
// periodically at a configurable rate within [MinRate, MaxRate]. A non-source
// task is data-triggered by its primary predecessor — the first predecessor
// edge added — and reads the latest output of its remaining predecessors
// (Cyber RT channel semantics); it first releases once every predecessor has
// produced at least one output. Sink tasks (no outgoing edges) are the
// control tasks that emit actuation commands.
package dag

import (
	"errors"
	"fmt"
	"strings"

	"hcperf/internal/exectime"
	"hcperf/internal/simtime"
)

// Criticality classifies a task for mixed-criticality scheduling (EDF-VD).
type Criticality int

// Criticality levels. LowCriticality tasks may be degraded under overload;
// HighCriticality tasks get virtual deadlines under EDF-VD.
const (
	LowCriticality Criticality = iota + 1
	HighCriticality
)

// String implements fmt.Stringer.
func (c Criticality) String() string {
	switch c {
	case LowCriticality:
		return "low"
	case HighCriticality:
		return "high"
	default:
		return fmt.Sprintf("criticality(%d)", int(c))
	}
}

// TaskID identifies a task within its graph (dense, assigned by AddTask).
type TaskID int

// Task describes one node of the task graph. Spec fields follow Table I of
// the paper; the zero value is not valid — construct via Graph.AddTask.
type Task struct {
	// ID is the dense graph-assigned identifier.
	ID TaskID
	// Name is the unique human-readable task name.
	Name string
	// Priority is the statically configured priority p_i; smaller means
	// higher priority (Apollo convention).
	Priority int
	// RelDeadline is the relative deadline D_i from release.
	RelDeadline simtime.Duration
	// E2E, when positive, additionally bounds the job's completion to
	// E2E after the sensing instant that produced its input data — the
	// end-to-end deadline from sensing to control. Typically set on the
	// control (sink) tasks.
	E2E simtime.Duration
	// Rate is the nominal release frequency in Hz (source tasks only;
	// derived tasks release on predecessor completion).
	Rate float64
	// MinRate and MaxRate bound the allowable rate range for the Task
	// Rate Adapter; both zero means the rate is fixed.
	MinRate, MaxRate float64
	// Criticality is used by EDF-VD.
	Criticality Criticality
	// Processor statically binds the task to a processor index for
	// Apollo-style scheduling; -1 means unbound (global queue).
	Processor int
	// Exec samples the task's execution time.
	Exec exectime.Model
	// IsControl marks the sink task(s) whose completion emits a control
	// command to the vehicle.
	IsControl bool
}

// Validate checks the task's own fields (graph-level checks are separate).
func (t *Task) Validate() error {
	switch {
	case t.Name == "":
		return errors.New("dag: task with empty name")
	case t.RelDeadline <= 0:
		return fmt.Errorf("dag: task %q has non-positive deadline %v", t.Name, t.RelDeadline)
	case t.E2E < 0:
		return fmt.Errorf("dag: task %q has negative end-to-end deadline %v", t.Name, t.E2E)
	case t.Exec == nil:
		return fmt.Errorf("dag: task %q has no execution-time model", t.Name)
	case t.Rate < 0 || t.MinRate < 0 || t.MaxRate < 0:
		return fmt.Errorf("dag: task %q has negative rate bounds", t.Name)
	case t.MinRate > t.MaxRate:
		return fmt.Errorf("dag: task %q rate range [%v,%v] inverted", t.Name, t.MinRate, t.MaxRate)
	case t.MaxRate > 0 && (t.Rate < t.MinRate || t.Rate > t.MaxRate):
		return fmt.Errorf("dag: task %q rate %v outside [%v,%v]", t.Name, t.Rate, t.MinRate, t.MaxRate)
	case t.Criticality != LowCriticality && t.Criticality != HighCriticality:
		return fmt.Errorf("dag: task %q has invalid criticality %d", t.Name, t.Criticality)
	}
	return nil
}

// Graph is a DAG of tasks. Construct with New, then AddTask/AddEdge, then
// Validate (or Finalize) before use.
type Graph struct {
	tasks  []*Task
	byName map[string]TaskID
	succ   [][]TaskID
	pred   [][]TaskID
	topo   []TaskID // cached by Validate
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]TaskID)}
}

// AddTask adds a task to the graph, assigning its ID. Criticality defaults
// to LowCriticality and Processor to -1 (unbound) when left zero. The
// returned pointer is the graph's own copy; callers may keep it.
func (g *Graph) AddTask(t Task) (*Task, error) {
	if t.Criticality == 0 {
		t.Criticality = LowCriticality
	}
	if t.Processor == 0 {
		t.Processor = -1
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if _, dup := g.byName[t.Name]; dup {
		return nil, fmt.Errorf("dag: duplicate task name %q", t.Name)
	}
	t.ID = TaskID(len(g.tasks))
	task := &t
	g.tasks = append(g.tasks, task)
	g.byName[t.Name] = t.ID
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.topo = nil
	return task, nil
}

// AddEdge adds the precedence constraint from -> to.
func (g *Graph) AddEdge(from, to TaskID) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("dag: edge (%d,%d) references unknown task", from, to)
	}
	if from == to {
		return fmt.Errorf("dag: self edge on task %q", g.tasks[from].Name)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("dag: duplicate edge %q -> %q", g.tasks[from].Name, g.tasks[to].Name)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.topo = nil
	return nil
}

// AddEdgeByName adds the precedence constraint from -> to by task names.
func (g *Graph) AddEdgeByName(from, to string) error {
	f, ok := g.byName[from]
	if !ok {
		return fmt.Errorf("dag: unknown task %q", from)
	}
	t, ok := g.byName[to]
	if !ok {
		return fmt.Errorf("dag: unknown task %q", to)
	}
	return g.AddEdge(f, t)
}

func (g *Graph) valid(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Task returns the task with the given ID, or nil if out of range.
func (g *Graph) Task(id TaskID) *Task {
	if !g.valid(id) {
		return nil
	}
	return g.tasks[id]
}

// TaskByName returns the named task, or nil if absent.
func (g *Graph) TaskByName(name string) *Task {
	id, ok := g.byName[name]
	if !ok {
		return nil
	}
	return g.tasks[id]
}

// Tasks returns all tasks in ID order as a fresh slice.
func (g *Graph) Tasks() []*Task {
	out := make([]*Task, len(g.tasks))
	copy(out, g.tasks)
	return out
}

// Successors returns the immediate successors of id as a fresh slice.
func (g *Graph) Successors(id TaskID) []TaskID {
	if !g.valid(id) {
		return nil
	}
	return append([]TaskID(nil), g.succ[id]...)
}

// PrimaryPred returns the task's primary (triggering) predecessor: the
// first predecessor edge added. It returns -1 for source tasks.
func (g *Graph) PrimaryPred(id TaskID) TaskID {
	if !g.valid(id) || len(g.pred[id]) == 0 {
		return -1
	}
	return g.pred[id][0]
}

// Predecessors returns ipred(τ) — the immediate predecessors — as a fresh
// slice.
func (g *Graph) Predecessors(id TaskID) []TaskID {
	if !g.valid(id) {
		return nil
	}
	return append([]TaskID(nil), g.pred[id]...)
}

// Sources returns the tasks with no incoming edges (sensing tasks).
func (g *Graph) Sources() []*Task {
	var out []*Task
	for i, t := range g.tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// Sinks returns the tasks with no outgoing edges (control tasks).
func (g *Graph) Sinks() []*Task {
	var out []*Task
	for i, t := range g.tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// Validate checks graph-level invariants: at least one task, acyclicity,
// per-task validity, and that every source task has a positive rate. On
// success the topological order is cached.
func (g *Graph) Validate() error {
	if len(g.tasks) == 0 {
		return errors.New("dag: empty graph")
	}
	for _, t := range g.tasks {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	for _, t := range g.Sources() {
		if t.Rate <= 0 {
			return fmt.Errorf("dag: source task %q needs a positive rate", t.Name)
		}
	}
	if g.topo == nil {
		// Acyclicity only changes through AddTask/AddEdge, which clear the
		// cache; a cached order proves the structure is still a DAG.
		topo, err := g.computeTopo()
		if err != nil {
			return err
		}
		g.topo = topo
	}
	return nil
}

// TopoOrder returns a topological order of the task IDs. It validates the
// graph if it has not been validated since the last mutation.
func (g *Graph) TopoOrder() ([]TaskID, error) {
	if g.topo == nil {
		topo, err := g.computeTopo()
		if err != nil {
			return nil, err
		}
		g.topo = topo
	}
	return append([]TaskID(nil), g.topo...), nil
}

// computeTopo runs Kahn's algorithm, preferring lower IDs for determinism.
func (g *Graph) computeTopo() ([]TaskID, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for i := range g.tasks {
		indeg[i] = len(g.pred[i])
	}
	var ready []TaskID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for len(ready) > 0 {
		// Extract the lowest ready ID (same deterministic order a sort
		// would give, without sorting the whole frontier every round).
		mi := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[mi] {
				mi = i
			}
		}
		id := ready[mi]
		ready[mi] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, id)
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		var cyc []string
		for i, d := range indeg {
			if d > 0 {
				cyc = append(cyc, g.tasks[i].Name)
			}
		}
		return nil, fmt.Errorf("dag: cycle involving tasks %s", strings.Join(cyc, ", "))
	}
	return order, nil
}

// CriticalPathNominal returns, for each task, the sum of nominal execution
// times along the longest (in nominal time) path ending at that task,
// including the task itself. Useful for sanity-checking end-to-end budgets
// against deadlines.
func (g *Graph) CriticalPathNominal() (map[TaskID]simtime.Duration, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	out := make(map[TaskID]simtime.Duration, len(topo))
	for _, id := range topo {
		best := simtime.Duration(0)
		for _, p := range g.pred[id] {
			if out[p] > best {
				best = out[p]
			}
		}
		out[id] = best + g.tasks[id].Exec.Nominal()
	}
	return out, nil
}

// DOT renders the graph in Graphviz dot format for inspection.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph tasks {\n  rankdir=LR;\n")
	for _, t := range g.tasks {
		fmt.Fprintf(&b, "  %q [label=\"%s\\np=%d D=%v\"];\n", t.Name, t.Name, t.Priority, t.RelDeadline)
	}
	for i, succs := range g.succ {
		for _, s := range succs {
			fmt.Fprintf(&b, "  %q -> %q;\n", g.tasks[i].Name, g.tasks[s].Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
