package dag

import (
	"fmt"

	"hcperf/internal/exectime"
	"hcperf/internal/simtime"
)

// The prebuilt graphs below reconstruct the two task graphs used in the
// paper. Figure 2 (the motivation example) names image pre-processing,
// traffic-light detection, configurable sensor fusion, object tracking,
// prediction, planning and control; Figure 11 (the evaluation graph) is a
// 23-task sensing-to-control pipeline with [priority, execution-time] pairs
// measured from Apollo on a Jetson TX2. The figures themselves are images,
// so topology details and exact numbers are reconstructed to match the
// text: unique static priorities with Control highest (=1), configurable
// sensor fusion dominated by O(n^3) Hungarian matching, and source (sensing)
// tasks with adjustable rates such as GPS/IMU in [10 Hz, 100 Hz].

const ms = simtime.Millisecond

// tn builds a truncated-normal model and panics on invalid literals; it is
// only used with compile-time constants below.
func tn(mean, sd, lo, hi simtime.Duration) exectime.Model {
	m, err := exectime.NewTruncNormal(mean, sd, lo, hi)
	if err != nil {
		panic(fmt.Sprintf("dag: bad builtin exec model: %v", err))
	}
	return m
}

// linear builds an obstacle-count-sensitive execution model and panics on
// invalid literals; it is only used with compile-time constants below.
func linear(base, perItem simtime.Duration) exectime.Model {
	m, err := exectime.NewLinear(base, perItem, 10, 0.08)
	if err != nil {
		panic(fmt.Sprintf("dag: bad builtin linear model: %v", err))
	}
	return m
}

// fusionModel builds the configurable-sensor-fusion execution model:
// base cost plus Hungarian O(n^3) matching over scene obstacles. With the
// default scene of ~10 obstacles this lands on the paper's 20 ms nominal.
func fusionModel() exectime.Model {
	m, err := exectime.NewFusion(18*ms, 2*simtime.Duration(1e-6), 0.05)
	if err != nil {
		panic(fmt.Sprintf("dag: bad fusion model: %v", err))
	}
	return m
}

// MotivationGraph builds the small Figure-2 style graph used by the
// motivation experiment (E1): two sensing sources feeding traffic-light
// detection and configurable sensor fusion, then tracking, prediction,
// planning and control. Priorities follow the Apollo convention (smaller =
// higher) with Control at 1.
func MotivationGraph() (*Graph, error) {
	g := New()
	specs := []graphSpec{
		{task: Task{
			Name: "image_preproc", Priority: 8, RelDeadline: 40 * ms,
			Rate: 20, MinRate: 10, MaxRate: 40,
			Exec: tn(8*ms, 1*ms, 5*ms, 14*ms),
		}},
		{task: Task{
			Name: "lidar_preproc", Priority: 9, RelDeadline: 40 * ms,
			Rate: 20, MinRate: 10, MaxRate: 40,
			Exec: tn(10*ms, 1.2*ms, 6*ms, 18*ms),
		}},
		{task: Task{
			Name: "traffic_light_detection", Priority: 6, RelDeadline: 45 * ms,
			Exec: tn(6*ms, 0.8*ms, 4*ms, 11*ms),
		}, preds: []string{"image_preproc"}},
		{task: Task{
			Name: "sensor_fusion", Priority: 5, RelDeadline: 80 * ms,
			Criticality: HighCriticality,
			Exec:        fusionModel(),
		}, preds: []string{"image_preproc", "lidar_preproc"}},
		{task: Task{
			Name: "object_tracking", Priority: 4, RelDeadline: 45 * ms,
			Criticality: HighCriticality,
			Exec:        tn(10*ms, 1*ms, 6*ms, 16*ms),
		}, preds: []string{"sensor_fusion"}},
		{task: Task{
			Name: "prediction", Priority: 3, RelDeadline: 45 * ms,
			Criticality: HighCriticality,
			Exec:        tn(8*ms, 1*ms, 5*ms, 14*ms),
		}, preds: []string{"object_tracking", "traffic_light_detection"}},
		{task: Task{
			Name: "planning", Priority: 2, RelDeadline: 50 * ms,
			Criticality: HighCriticality,
			Exec:        tn(12*ms, 1.4*ms, 7*ms, 20*ms),
		}, preds: []string{"prediction"}},
		{task: Task{
			Name: "control", Priority: 1, RelDeadline: 30 * ms, E2E: 250 * ms,
			Criticality: HighCriticality, IsControl: true,
			Exec: tn(3*ms, 0.4*ms, 2*ms, 6*ms),
		}, preds: []string{"planning"}},
	}
	if err := build(g, specs); err != nil {
		return nil, err
	}
	return g, nil
}

// ADGraph23 builds the 23-task evaluation graph of Figure 11: six sensing
// sources, a camera/lidar/radar perception front-end, configurable sensor
// fusion, localization, prediction, a three-stage planner and the control
// sink. Processor indices carry the Apollo-style static binding used by the
// Apollo baseline scheduler (M = 4).
func ADGraph23() (*Graph, error) {
	g := New()
	specs := []graphSpec{
		// Sensing sources. GPS/IMU carries the paper's [10 Hz, 100 Hz]
		// adjustable range.
		{task: Task{
			Name: "camera_front", Priority: 20, RelDeadline: 25 * ms,
			Rate: 15, MinRate: 8, MaxRate: 30, Processor: 1,
			Exec: tn(1.5*ms, 0.2*ms, 1*ms, 3*ms),
		}},
		{task: Task{
			Name: "camera_traffic_light", Priority: 21, RelDeadline: 30 * ms,
			Rate: 10, MinRate: 5, MaxRate: 20, Processor: 1,
			Exec: tn(1.5*ms, 0.2*ms, 1*ms, 3*ms),
		}},
		{task: Task{
			Name: "lidar_scan", Priority: 19, RelDeadline: 25 * ms,
			Rate: 10, MinRate: 5, MaxRate: 20, Processor: 2,
			Exec: tn(2*ms, 0.3*ms, 1*ms, 4*ms),
		}},
		{task: Task{
			Name: "radar_scan", Priority: 22, RelDeadline: 30 * ms,
			Rate: 15, MinRate: 8, MaxRate: 30, Processor: 2,
			Exec: tn(1*ms, 0.2*ms, 0.5*ms, 2*ms),
		}},
		{task: Task{
			Name: "gps_imu", Priority: 23, RelDeadline: 15 * ms,
			Rate: 20, MinRate: 10, MaxRate: 100, Processor: 3,
			Exec: tn(0.8*ms, 0.1*ms, 0.5*ms, 1.5*ms),
		}},
		{task: Task{
			Name: "chassis_feedback", Priority: 18, RelDeadline: 15 * ms,
			Rate: 20, MinRate: 10, MaxRate: 100, Processor: 4,
			Exec: tn(0.6*ms, 0.1*ms, 0.3*ms, 1.2*ms),
		}},
		// Pre-processing.
		{task: Task{
			Name: "image_preproc", Priority: 15, RelDeadline: 35 * ms, Processor: 1,
			Exec: tn(8*ms, 1*ms, 5*ms, 14*ms),
		}, preds: []string{"camera_front"}},
		{task: Task{
			Name: "tl_image_preproc", Priority: 16, RelDeadline: 30 * ms, Processor: 3,
			Exec: tn(5*ms, 0.7*ms, 3*ms, 9*ms),
		}, preds: []string{"camera_traffic_light"}},
		{task: Task{
			Name: "pointcloud_preproc", Priority: 14, RelDeadline: 45 * ms, Processor: 2,
			Exec: tn(10*ms, 1.2*ms, 6*ms, 17*ms),
		}, preds: []string{"lidar_scan"}},
		{task: Task{
			Name: "radar_preproc", Priority: 17, RelDeadline: 35 * ms, Processor: 3,
			Exec: tn(3*ms, 0.4*ms, 2*ms, 6*ms),
		}, preds: []string{"radar_scan"}},
		// Detection.
		{task: Task{
			Name: "lane_detection", Priority: 12, RelDeadline: 35 * ms, Processor: 1,
			Exec: tn(8*ms, 1*ms, 5*ms, 14*ms),
		}, preds: []string{"image_preproc"}},
		{task: Task{
			Name: "camera_detection", Priority: 11, RelDeadline: 40 * ms, Processor: 1,
			Exec: linear(7*ms, 0.4*ms),
		}, preds: []string{"image_preproc"}},
		{task: Task{
			Name: "traffic_light_detection", Priority: 13, RelDeadline: 40 * ms, Processor: 3,
			Exec: tn(6*ms, 0.8*ms, 4*ms, 11*ms),
		}, preds: []string{"tl_image_preproc"}},
		{task: Task{
			Name: "lidar_detection", Priority: 10, RelDeadline: 45 * ms, Processor: 2,
			Exec: linear(9*ms, 0.5*ms),
		}, preds: []string{"pointcloud_preproc"}},
		// Fusion, tracking, localization.
		{task: Task{
			Name: "sensor_fusion", Priority: 9, RelDeadline: 70 * ms, Processor: 2,
			Criticality: HighCriticality,
			Exec:        fusionModel(),
		}, preds: []string{"lidar_detection", "camera_detection", "radar_preproc"}},
		{task: Task{
			Name: "object_tracking", Priority: 8, RelDeadline: 35 * ms, Processor: 3,
			Criticality: HighCriticality,
			Exec:        linear(6*ms, 0.4*ms),
		}, preds: []string{"sensor_fusion"}},
		{task: Task{
			Name: "localization", Priority: 7, RelDeadline: 40 * ms, Processor: 3,
			Criticality: HighCriticality,
			Exec:        tn(8*ms, 0.9*ms, 5*ms, 13*ms),
		}, preds: []string{"gps_imu", "pointcloud_preproc"}},
		// Prediction and planning.
		{task: Task{
			Name: "prediction", Priority: 6, RelDeadline: 35 * ms, Processor: 4,
			Criticality: HighCriticality,
			Exec:        tn(9*ms, 1*ms, 5*ms, 15*ms),
		}, preds: []string{"object_tracking", "localization"}},
		{task: Task{
			Name: "reference_line", Priority: 5, RelDeadline: 35 * ms, Processor: 3,
			Criticality: HighCriticality,
			Exec:        tn(7*ms, 0.8*ms, 4*ms, 12*ms),
		}, preds: []string{"lane_detection", "localization"}},
		{task: Task{
			Name: "behavior_planning", Priority: 4, RelDeadline: 40 * ms, Processor: 4,
			Criticality: HighCriticality,
			Exec:        tn(10*ms, 1.1*ms, 6*ms, 17*ms),
		}, preds: []string{"prediction", "traffic_light_detection", "reference_line"}},
		{task: Task{
			Name: "motion_planning", Priority: 3, RelDeadline: 45 * ms, Processor: 4,
			Criticality: HighCriticality,
			Exec:        tn(14*ms, 1.5*ms, 8*ms, 23*ms),
		}, preds: []string{"behavior_planning", "reference_line"}},
		{task: Task{
			Name: "trajectory_postproc", Priority: 2, RelDeadline: 22 * ms, Processor: 4,
			Criticality: HighCriticality,
			Exec:        tn(4*ms, 0.5*ms, 2*ms, 7*ms),
		}, preds: []string{"motion_planning", "chassis_feedback"}},
		{task: Task{
			Name: "control", Priority: 1, RelDeadline: 18 * ms, E2E: 250 * ms, Processor: 4,
			Criticality: HighCriticality, IsControl: true,
			Exec: tn(3*ms, 0.4*ms, 2*ms, 6*ms),
		}, preds: []string{"trajectory_postproc", "chassis_feedback"}},
	}
	if err := build(g, specs); err != nil {
		return nil, err
	}
	return g, nil
}

// graphSpec pairs a task with the names of its immediate predecessors.
type graphSpec struct {
	task  Task
	preds []string
}

func build(g *Graph, specs []graphSpec) error {
	for _, s := range specs {
		if _, err := g.AddTask(s.task); err != nil {
			return err
		}
	}
	for _, s := range specs {
		for _, p := range s.preds {
			if err := g.AddEdgeByName(p, s.task.Name); err != nil {
				return err
			}
		}
	}
	return g.Validate()
}

// ADGraphDualControl builds a 24-task variant of the evaluation graph in
// which the control stage is split into separate longitudinal and lateral
// sinks (lon_control commands throttle/brake, lat_control commands
// steering), both data-triggered by trajectory post-processing. This is the
// multi-sink configuration real Apollo deployments use and exercises the
// engine's support for several control tasks in one graph.
func ADGraphDualControl() (*Graph, error) {
	g, err := ADGraph23()
	if err != nil {
		return nil, err
	}
	// Rebuild from the 23-task spec, replacing the single control sink.
	dual := New()
	for _, t := range g.Tasks() {
		if t.Name == "control" {
			continue
		}
		spec := *t
		spec.ID = 0
		if _, err := dual.AddTask(spec); err != nil {
			return nil, err
		}
	}
	for _, t := range g.Tasks() {
		if t.Name == "control" {
			continue
		}
		for _, s := range g.Successors(t.ID) {
			succ := g.Task(s)
			if succ.Name == "control" {
				continue
			}
			if err := dual.AddEdgeByName(t.Name, succ.Name); err != nil {
				return nil, err
			}
		}
	}
	sinks := []Task{
		{
			Name: "lon_control", Priority: 1, RelDeadline: 18 * ms, E2E: 250 * ms,
			Processor: 4, Criticality: HighCriticality, IsControl: true,
			Exec: tn(2.5*ms, 0.3*ms, 1.5*ms, 5*ms),
		},
		{
			Name: "lat_control", Priority: 2, RelDeadline: 18 * ms, E2E: 250 * ms,
			Processor: 4, Criticality: HighCriticality, IsControl: true,
			Exec: tn(2.5*ms, 0.3*ms, 1.5*ms, 5*ms),
		},
	}
	for _, sink := range sinks {
		if _, err := dual.AddTask(sink); err != nil {
			return nil, err
		}
		for _, pred := range []string{"trajectory_postproc", "chassis_feedback"} {
			if err := dual.AddEdgeByName(pred, sink.Name); err != nil {
				return nil, err
			}
		}
	}
	// Shift every inherited priority up by one so the two control sinks
	// hold the unique top slots 1 and 2.
	for _, t := range dual.Tasks() {
		if t.Name != "lon_control" && t.Name != "lat_control" {
			t.Priority++
		}
	}
	if err := dual.Validate(); err != nil {
		return nil, err
	}
	return dual, nil
}
