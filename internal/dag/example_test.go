package dag_test

import (
	"fmt"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/simtime"
)

// Building a minimal sensing → perception → control pipeline. The first
// predecessor edge added to a task is its primary (data-triggering) input.
func Example() {
	const ms = simtime.Millisecond
	g := dag.New()
	tasks := []dag.Task{
		{
			Name: "lidar", Priority: 3, RelDeadline: 25 * ms,
			Rate: 10, MinRate: 5, MaxRate: 20,
			Exec: exectime.Constant(2 * ms),
		},
		{
			Name: "fusion", Priority: 2, RelDeadline: 60 * ms,
			Exec: exectime.Constant(20 * ms),
		},
		{
			Name: "control", Priority: 1, RelDeadline: 20 * ms,
			E2E: 200 * ms, IsControl: true,
			Exec: exectime.Constant(3 * ms),
		},
	}
	for _, t := range tasks {
		if _, err := g.AddTask(t); err != nil {
			fmt.Println(err)
			return
		}
	}
	for _, e := range [][2]string{{"lidar", "fusion"}, {"fusion", "control"}} {
		if err := g.AddEdgeByName(e[0], e[1]); err != nil {
			fmt.Println(err)
			return
		}
	}
	if err := g.Validate(); err != nil {
		fmt.Println(err)
		return
	}

	order, err := g.TopoOrder()
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, id := range order {
		fmt.Println(g.Task(id).Name)
	}
	fmt.Printf("sources=%d sinks=%d primary(control)=%s\n",
		len(g.Sources()), len(g.Sinks()),
		g.Task(g.PrimaryPred(g.TaskByName("control").ID)).Name)
	// Output:
	// lidar
	// fusion
	// control
	// sources=1 sinks=1 primary(control)=fusion
}
