package dag

import (
	"strings"
	"testing"
	"testing/quick"

	"hcperf/internal/exectime"
	"hcperf/internal/simtime"
)

func validTask(name string) Task {
	return Task{
		Name:        name,
		Priority:    5,
		RelDeadline: 50 * simtime.Millisecond,
		Rate:        10,
		MinRate:     5,
		MaxRate:     20,
		Exec:        exectime.Constant(10 * simtime.Millisecond),
	}
}

func TestAddTaskDefaults(t *testing.T) {
	g := New()
	task, err := g.AddTask(validTask("a"))
	if err != nil {
		t.Fatal(err)
	}
	if task.ID != 0 {
		t.Errorf("first task ID = %d, want 0", task.ID)
	}
	if task.Criticality != LowCriticality {
		t.Errorf("default criticality = %v, want low", task.Criticality)
	}
	if task.Processor != -1 {
		t.Errorf("default processor = %d, want -1", task.Processor)
	}
}

func TestAddTaskValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Task)
	}{
		{name: "empty name", mutate: func(tk *Task) { tk.Name = "" }},
		{name: "zero deadline", mutate: func(tk *Task) { tk.RelDeadline = 0 }},
		{name: "nil exec", mutate: func(tk *Task) { tk.Exec = nil }},
		{name: "negative rate", mutate: func(tk *Task) { tk.Rate = -1 }},
		{name: "inverted range", mutate: func(tk *Task) { tk.MinRate, tk.MaxRate = 20, 5 }},
		{name: "rate below range", mutate: func(tk *Task) { tk.Rate = 1 }},
		{name: "rate above range", mutate: func(tk *Task) { tk.Rate = 100 }},
		{name: "bad criticality", mutate: func(tk *Task) { tk.Criticality = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := New()
			task := validTask("x")
			tt.mutate(&task)
			if _, err := g.AddTask(task); err == nil {
				t.Errorf("AddTask accepted invalid task (%s)", tt.name)
			}
		})
	}
}

func TestDuplicateName(t *testing.T) {
	g := New()
	if _, err := g.AddTask(validTask("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddTask(validTask("a")); err == nil {
		t.Error("duplicate task name accepted")
	}
}

func TestEdges(t *testing.T) {
	g := New()
	a, _ := g.AddTask(validTask("a"))
	b, _ := g.AddTask(validTask("b"))
	if err := g.AddEdge(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a.ID, b.ID); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(a.ID, a.ID); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddEdge(a.ID, 99); err == nil {
		t.Error("edge to unknown task accepted")
	}
	if err := g.AddEdgeByName("a", "missing"); err == nil {
		t.Error("edge to unknown name accepted")
	}
	if err := g.AddEdgeByName("missing", "a"); err == nil {
		t.Error("edge from unknown name accepted")
	}
	succ := g.Successors(a.ID)
	if len(succ) != 1 || succ[0] != b.ID {
		t.Errorf("Successors(a) = %v, want [b]", succ)
	}
	pred := g.Predecessors(b.ID)
	if len(pred) != 1 || pred[0] != a.ID {
		t.Errorf("Predecessors(b) = %v, want [a]", pred)
	}
	if g.Successors(99) != nil || g.Predecessors(99) != nil {
		t.Error("adjacency of unknown task should be nil")
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g := New()
	a, _ := g.AddTask(validTask("a"))
	b, _ := g.AddTask(validTask("b"))
	c, _ := g.AddTask(validTask("c"))
	if err := g.AddEdge(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b.ID, c.ID); err != nil {
		t.Fatal(err)
	}
	srcs := g.Sources()
	if len(srcs) != 1 || srcs[0].Name != "a" {
		t.Errorf("Sources = %v", names(srcs))
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0].Name != "c" {
		t.Errorf("Sinks = %v", names(sinks))
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := New()
	a, _ := g.AddTask(validTask("a"))
	b, _ := g.AddTask(validTask("b"))
	c, _ := g.AddTask(validTask("c"))
	for _, e := range [][2]TaskID{{a.ID, b.ID}, {b.ID, c.ID}, {c.ID, b.ID}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	err := g.Validate()
	if err == nil {
		t.Fatal("cyclic graph validated")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error %q does not mention cycle", err)
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Error("empty graph validated")
	}
}

func TestValidateSourceNeedsRate(t *testing.T) {
	g := New()
	task := validTask("src")
	task.Rate, task.MinRate, task.MaxRate = 0, 0, 0
	if _, err := g.AddTask(task); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Error("source task without rate validated")
	}
}

func TestTopoOrder(t *testing.T) {
	g := New()
	// Diamond: a -> {b, c} -> d.
	a, _ := g.AddTask(validTask("a"))
	b, _ := g.AddTask(validTask("b"))
	c, _ := g.AddTask(validTask("c"))
	d, _ := g.AddTask(validTask("d"))
	for _, e := range [][2]TaskID{{a.ID, b.ID}, {a.ID, c.ID}, {b.ID, d.ID}, {c.ID, d.ID}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range [][2]TaskID{{a.ID, b.ID}, {a.ID, c.ID}, {b.ID, d.ID}, {c.ID, d.ID}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("topo order violates edge %v", e)
		}
	}
	// Deterministic: lower IDs first among ready tasks.
	if order[1] != b.ID || order[2] != c.ID {
		t.Errorf("topo order %v not ID-deterministic", order)
	}
}

func TestLookup(t *testing.T) {
	g := New()
	a, _ := g.AddTask(validTask("a"))
	if got := g.Task(a.ID); got != a {
		t.Error("Task(id) did not return the stored task")
	}
	if g.Task(-1) != nil || g.Task(5) != nil {
		t.Error("Task out of range should be nil")
	}
	if got := g.TaskByName("a"); got != a {
		t.Error("TaskByName did not return the stored task")
	}
	if g.TaskByName("zzz") != nil {
		t.Error("TaskByName unknown should be nil")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	tasks := g.Tasks()
	if len(tasks) != 1 || tasks[0] != a {
		t.Errorf("Tasks = %v", names(tasks))
	}
}

func TestCriticalPathNominal(t *testing.T) {
	g := New()
	mk := func(name string, execMS simtime.Duration) *Task {
		task := validTask(name)
		task.Exec = exectime.Constant(execMS * simtime.Millisecond)
		out, err := g.AddTask(task)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := mk("a", 10)
	b := mk("b", 20)
	c := mk("c", 5)
	d := mk("d", 1)
	for _, e := range [][2]TaskID{{a.ID, b.ID}, {a.ID, c.ID}, {b.ID, d.ID}, {c.ID, d.ID}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := g.CriticalPathNominal()
	if err != nil {
		t.Fatal(err)
	}
	want := map[TaskID]simtime.Duration{
		a.ID: 10 * simtime.Millisecond,
		b.ID: 30 * simtime.Millisecond,
		c.ID: 15 * simtime.Millisecond,
		d.ID: 31 * simtime.Millisecond,
	}
	for id, w := range want {
		if got := cp[id]; got != w {
			t.Errorf("critical path of %d = %v, want %v", id, got, w)
		}
	}
}

func TestDOT(t *testing.T) {
	g, err := MotivationGraph()
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", `"sensor_fusion"`, `"planning" -> "control"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestMotivationGraph(t *testing.T) {
	g, err := MotivationGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 8 {
		t.Errorf("motivation graph has %d tasks, want 8", g.Len())
	}
	ctrl := g.TaskByName("control")
	if ctrl == nil || !ctrl.IsControl || ctrl.Priority != 1 {
		t.Error("control task missing, or not marked IsControl with priority 1")
	}
	if len(g.Sources()) != 2 {
		t.Errorf("motivation graph has %d sources, want 2", len(g.Sources()))
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0].Name != "control" {
		t.Errorf("sinks = %v, want [control]", names(sinks))
	}
}

func TestADGraph23(t *testing.T) {
	g, err := ADGraph23()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 23 {
		t.Fatalf("AD graph has %d tasks, want 23", g.Len())
	}
	// Unique priorities 1..23, control highest.
	seen := make(map[int]string, 23)
	for _, task := range g.Tasks() {
		if prev, dup := seen[task.Priority]; dup {
			t.Errorf("priority %d shared by %q and %q", task.Priority, prev, task.Name)
		}
		seen[task.Priority] = task.Name
		if task.Priority < 1 || task.Priority > 23 {
			t.Errorf("task %q priority %d outside 1..23", task.Name, task.Priority)
		}
	}
	if seen[1] != "control" {
		t.Errorf("priority 1 belongs to %q, want control", seen[1])
	}
	// GPS/IMU has the paper's adjustable range.
	gps := g.TaskByName("gps_imu")
	if gps == nil || gps.MinRate != 10 || gps.MaxRate != 100 {
		t.Error("gps_imu missing or rate range is not [10,100] Hz")
	}
	if len(g.Sources()) != 6 {
		t.Errorf("AD graph has %d sources, want 6", len(g.Sources()))
	}
	ctrl := g.TaskByName("control")
	if ctrl == nil || !ctrl.IsControl {
		t.Fatal("control task missing or unmarked")
	}
	// Control must be reachable from every perception source (end-to-end
	// chains exist).
	for _, src := range []string{"camera_front", "lidar_scan", "radar_scan", "gps_imu"} {
		if !reaches(t, g, src, "control") {
			t.Errorf("no path from %s to control", src)
		}
	}
	// High-criticality set covers the planning/control spine for EDF-VD.
	for _, name := range []string{"sensor_fusion", "prediction", "motion_planning", "control"} {
		if task := g.TaskByName(name); task == nil || task.Criticality != HighCriticality {
			t.Errorf("task %s should be high-criticality", name)
		}
	}
}

func reaches(t *testing.T, g *Graph, from, to string) bool {
	t.Helper()
	start := g.TaskByName(from)
	goal := g.TaskByName(to)
	if start == nil || goal == nil {
		t.Fatalf("unknown task %s or %s", from, to)
	}
	seenIDs := map[TaskID]bool{start.ID: true}
	queue := []TaskID{start.ID}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if id == goal.ID {
			return true
		}
		for _, s := range g.Successors(id) {
			if !seenIDs[s] {
				seenIDs[s] = true
				queue = append(queue, s)
			}
		}
	}
	return false
}

func names(tasks []*Task) []string {
	out := make([]string, len(tasks))
	for i, task := range tasks {
		out[i] = task.Name
	}
	return out
}

// Property: random DAGs built with forward edges always validate, and the
// returned topo order respects every edge.
func TestQuickRandomForwardDAGs(t *testing.T) {
	f := func(n uint8, edges []uint16) bool {
		size := int(n%12) + 2
		g := New()
		for i := 0; i < size; i++ {
			task := validTask(string(rune('a' + i)))
			if _, err := g.AddTask(task); err != nil {
				return false
			}
		}
		for _, e := range edges {
			from := int(e) % size
			to := int(e>>4) % size
			if from >= to {
				continue // forward edges only: guaranteed acyclic
			}
			_ = g.AddEdge(TaskID(from), TaskID(to)) // duplicate edges are rejected, fine
		}
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make(map[TaskID]int, len(order))
		for i, id := range order {
			pos[id] = i
		}
		for i := 0; i < size; i++ {
			for _, s := range g.Successors(TaskID(i)) {
				if pos[TaskID(i)] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestADGraphDualControl(t *testing.T) {
	g, err := ADGraphDualControl()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 24 {
		t.Fatalf("dual-control graph has %d tasks, want 24", g.Len())
	}
	sinks := g.Sinks()
	if len(sinks) != 2 {
		t.Fatalf("dual-control graph has %d sinks, want 2", len(sinks))
	}
	for _, s := range sinks {
		if !s.IsControl {
			t.Errorf("sink %s not marked IsControl", s.Name)
		}
		if p := g.PrimaryPred(s.ID); g.Task(p).Name != "trajectory_postproc" {
			t.Errorf("sink %s primary is %s, want trajectory_postproc", s.Name, g.Task(p).Name)
		}
	}
	// Priorities stay unique.
	seen := make(map[int]string, 24)
	for _, task := range g.Tasks() {
		if prev, dup := seen[task.Priority]; dup {
			t.Errorf("priority %d shared by %q and %q", task.Priority, prev, task.Name)
		}
		seen[task.Priority] = task.Name
	}
	if seen[1] != "lon_control" || seen[2] != "lat_control" {
		t.Errorf("control priorities wrong: p1=%s p2=%s", seen[1], seen[2])
	}
	if !reaches(t, g, "lidar_scan", "lon_control") || !reaches(t, g, "lidar_scan", "lat_control") {
		t.Error("perception chain does not reach both control sinks")
	}
}
