// Package metrics implements the driving-performance metrics of the HCPerf
// evaluation: collision detection for the motivation experiment, the
// jerk-based passenger-discomfort index of §VII-C, and miss-ratio
// bucketing for the per-second deadline plots.
package metrics

import (
	"errors"
	"fmt"
	"math"

	"hcperf/internal/stats"
)

// CollisionDetector watches the gap between two vehicles and latches the
// first time it closes below MinGap (0 = physical contact).
type CollisionDetector struct {
	// MinGap is the gap at or below which a collision is declared (m).
	MinGap float64

	collided bool
	at       float64
}

// Note observes the gap at time t and reports whether a collision has
// (ever) occurred.
func (c *CollisionDetector) Note(t, gap float64) bool {
	if !c.collided && gap <= c.MinGap {
		c.collided = true
		c.at = t
	}
	return c.collided
}

// Collided reports whether a collision was detected.
func (c *CollisionDetector) Collided() bool { return c.collided }

// At returns the collision time; only meaningful when Collided.
func (c *CollisionDetector) At() float64 { return c.at }

// Discomfort is the passenger-discomfort index: the windowed RMS of
// longitudinal jerk. The comfort literature the paper cites bounds
// acceptable acceleration and jerk; sparse, abrupt control commands raise
// jerk, so this index falls as control throughput rises.
type Discomfort struct {
	window    *stats.Window
	lastAccel float64
	lastT     float64
	primed    bool
}

// NewDiscomfort builds an index over the given number of jerk samples.
func NewDiscomfort(windowSamples int) (*Discomfort, error) {
	w, err := stats.NewWindow(windowSamples)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return &Discomfort{window: w}, nil
}

// Note observes the achieved acceleration at time t. Calls must have
// strictly increasing t once primed.
func (d *Discomfort) Note(t, accel float64) error {
	if !d.primed {
		d.lastT, d.lastAccel = t, accel
		d.primed = true
		return nil
	}
	dt := t - d.lastT
	if dt <= 0 {
		return errors.New("metrics: non-increasing time in discomfort index")
	}
	jerk := (accel - d.lastAccel) / dt
	d.window.Push(jerk)
	d.lastT, d.lastAccel = t, accel
	return nil
}

// Index returns the current windowed RMS jerk (m/s^3).
func (d *Discomfort) Index() float64 { return d.window.RMS() }

// Reset clears the index.
func (d *Discomfort) Reset() {
	d.window.Reset()
	d.primed = false
}

// MissBuckets accumulates per-interval deadline accounting to reproduce the
// paper's miss-ratio-over-time plots (Figs. 4(a), 13(d), 15(d), 18(b)).
type MissBuckets struct {
	width   float64
	decided []uint64
	missed  []uint64
}

// NewMissBuckets builds an accumulator with the given bucket width in
// seconds.
func NewMissBuckets(width float64) (*MissBuckets, error) {
	if width <= 0 {
		return nil, fmt.Errorf("metrics: bucket width %v must be positive", width)
	}
	return &MissBuckets{width: width}, nil
}

// Note records one decided job at time t: missed=true for a deadline miss.
func (m *MissBuckets) Note(t float64, missed bool) error {
	if t < 0 {
		return fmt.Errorf("metrics: negative time %v", t)
	}
	idx := int(math.Floor(t / m.width))
	for len(m.decided) <= idx {
		m.decided = append(m.decided, 0)
		m.missed = append(m.missed, 0)
	}
	m.decided[idx]++
	if missed {
		m.missed[idx]++
	}
	return nil
}

// Len returns the number of buckets observed so far.
func (m *MissBuckets) Len() int { return len(m.decided) }

// Width returns the bucket width in seconds.
func (m *MissBuckets) Width() float64 { return m.width }

// Ratio returns the miss ratio of bucket i (0 when the bucket is empty or
// out of range).
func (m *MissBuckets) Ratio(i int) float64 {
	if i < 0 || i >= len(m.decided) || m.decided[i] == 0 {
		return 0
	}
	return float64(m.missed[i]) / float64(m.decided[i])
}

// Ratios returns all bucket miss ratios.
func (m *MissBuckets) Ratios() []float64 {
	out := make([]float64, len(m.decided))
	for i := range out {
		out[i] = m.Ratio(i)
	}
	return out
}

// MeanRatio returns the overall miss ratio across all buckets.
func (m *MissBuckets) MeanRatio() float64 {
	var dec, mis uint64
	for i := range m.decided {
		dec += m.decided[i]
		mis += m.missed[i]
	}
	if dec == 0 {
		return 0
	}
	return float64(mis) / float64(dec)
}

// WeaklyHard tracks the (m, K) weakly-hard real-time constraint: at most m
// deadline misses in any window of K consecutive jobs. Job-class-level
// weakly-hard guarantees are the relaxation of hard real-time that the
// paper's related work (Choi et al., RTAS 2019) analyses; control loops
// tolerate isolated misses but not bursts.
type WeaklyHard struct {
	m, k    int
	window  []bool // ring of the last K outcomes: true = missed
	head    int
	filled  int
	misses  int // misses within the ring
	worst   int // worst observed misses in any window
	burst   int // current consecutive-miss run
	maxRun  int // longest consecutive-miss run
	decided uint64
	broken  uint64 // windows that violated the constraint
}

// NewWeaklyHard builds a tracker for the (m, K) constraint; requires
// 0 <= m < K.
func NewWeaklyHard(m, k int) (*WeaklyHard, error) {
	if k <= 0 || m < 0 || m >= k {
		return nil, fmt.Errorf("metrics: invalid weakly-hard constraint (%d,%d)", m, k)
	}
	return &WeaklyHard{m: m, k: k, window: make([]bool, k)}, nil
}

// Note records one job outcome and reports whether the constraint holds for
// the window ending at this job.
func (w *WeaklyHard) Note(missed bool) bool {
	if w.filled == w.k {
		if w.window[w.head] {
			w.misses--
		}
	} else {
		w.filled++
	}
	w.window[w.head] = missed
	if missed {
		w.misses++
		w.burst++
		if w.burst > w.maxRun {
			w.maxRun = w.burst
		}
	} else {
		w.burst = 0
	}
	w.head = (w.head + 1) % w.k
	if w.misses > w.worst {
		w.worst = w.misses
	}
	w.decided++
	ok := w.misses <= w.m
	if !ok {
		w.broken++
	}
	return ok
}

// Holds reports whether the constraint has held for every window so far.
func (w *WeaklyHard) Holds() bool { return w.broken == 0 }

// Violations returns the number of windows that broke the constraint.
func (w *WeaklyHard) Violations() uint64 { return w.broken }

// WorstWindow returns the maximum misses observed in any K-window.
func (w *WeaklyHard) WorstWindow() int { return w.worst }

// MaxBurst returns the longest run of consecutive misses.
func (w *WeaklyHard) MaxBurst() int { return w.maxRun }

// Decided returns how many job outcomes have been recorded.
func (w *WeaklyHard) Decided() uint64 { return w.decided }
