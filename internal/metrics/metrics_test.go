package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCollisionDetector(t *testing.T) {
	var c CollisionDetector // MinGap 0: contact
	if c.Note(1, 10) {
		t.Error("collision at gap 10")
	}
	if !c.Note(2, 0) {
		t.Error("no collision at gap 0")
	}
	if !c.Collided() || c.At() != 2 {
		t.Errorf("Collided=%v At=%v, want true,2", c.Collided(), c.At())
	}
	// Latches: recovering gap does not clear it.
	if !c.Note(3, 5) {
		t.Error("collision unlatched")
	}
	if c.At() != 2 {
		t.Errorf("At moved to %v", c.At())
	}
}

func TestCollisionDetectorMinGap(t *testing.T) {
	c := CollisionDetector{MinGap: 2}
	if c.Note(0, 2.5) {
		t.Error("collision above MinGap")
	}
	if !c.Note(1, 1.9) {
		t.Error("no collision below MinGap")
	}
}

func TestDiscomfortConstantAccelIsZero(t *testing.T) {
	d, err := NewDiscomfort(50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := d.Note(float64(i)*0.01, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Index(); got != 0 {
		t.Errorf("discomfort %v for constant accel, want 0", got)
	}
}

func TestDiscomfortAbruptCommandsRaiseIndex(t *testing.T) {
	smooth, err := NewDiscomfort(100)
	if err != nil {
		t.Fatal(err)
	}
	abrupt, err := NewDiscomfort(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tm := float64(i) * 0.01
		// Smooth: slow sine. Abrupt: square wave (sparse bang-bang
		// control, the low-throughput failure mode).
		if err := smooth.Note(tm, math.Sin(tm)); err != nil {
			t.Fatal(err)
		}
		sq := 1.0
		if i%20 >= 10 {
			sq = -1
		}
		if err := abrupt.Note(tm, sq); err != nil {
			t.Fatal(err)
		}
	}
	if smooth.Index() >= abrupt.Index() {
		t.Errorf("smooth discomfort %v >= abrupt %v", smooth.Index(), abrupt.Index())
	}
}

func TestDiscomfortValidation(t *testing.T) {
	if _, err := NewDiscomfort(0); err == nil {
		t.Error("zero window accepted")
	}
	d, err := NewDiscomfort(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Note(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Note(1, 0); err == nil {
		t.Error("non-increasing time accepted")
	}
	d.Reset()
	if d.Index() != 0 {
		t.Error("Reset did not clear index")
	}
	if err := d.Note(0.5, 0); err != nil {
		t.Errorf("Note after Reset: %v", err)
	}
}

func TestMissBuckets(t *testing.T) {
	m, err := NewMissBuckets(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket 0: 3 decided, 1 missed. Bucket 2: 2 decided, 2 missed.
	for _, ev := range []struct {
		t      float64
		missed bool
	}{
		{t: 0.1}, {t: 0.5, missed: true}, {t: 0.9},
		{t: 2.0, missed: true}, {t: 2.9, missed: true},
	} {
		if err := m.Note(ev.t, ev.missed); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if got := m.Ratio(0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Ratio(0) = %v, want 1/3", got)
	}
	if got := m.Ratio(1); got != 0 {
		t.Errorf("Ratio(1) = %v, want 0 (empty bucket)", got)
	}
	if got := m.Ratio(2); got != 1 {
		t.Errorf("Ratio(2) = %v, want 1", got)
	}
	if got := m.Ratio(99); got != 0 {
		t.Errorf("Ratio out of range = %v, want 0", got)
	}
	ratios := m.Ratios()
	if len(ratios) != 3 || ratios[2] != 1 {
		t.Errorf("Ratios = %v", ratios)
	}
	if got := m.MeanRatio(); math.Abs(got-3.0/5) > 1e-12 {
		t.Errorf("MeanRatio = %v, want 0.6", got)
	}
	if m.Width() != 1 {
		t.Errorf("Width = %v", m.Width())
	}
}

func TestMissBucketsValidation(t *testing.T) {
	if _, err := NewMissBuckets(0); err == nil {
		t.Error("zero width accepted")
	}
	m, err := NewMissBuckets(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Note(-1, false); err == nil {
		t.Error("negative time accepted")
	}
	if m.MeanRatio() != 0 {
		t.Error("empty MeanRatio should be 0")
	}
}

// Property: every bucket ratio is within [0,1] and MeanRatio is within the
// min/max bucket ratios' envelope [0,1].
func TestQuickMissBucketsBounded(t *testing.T) {
	f := func(events []uint16) bool {
		m, err := NewMissBuckets(0.5)
		if err != nil {
			return false
		}
		for _, e := range events {
			tm := float64(e%1000) / 100
			if err := m.Note(tm, e%3 == 0); err != nil {
				return false
			}
		}
		for _, r := range m.Ratios() {
			if r < 0 || r > 1 {
				return false
			}
		}
		mr := m.MeanRatio()
		return mr >= 0 && mr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeaklyHardValidation(t *testing.T) {
	for _, mk := range [][2]int{{-1, 5}, {5, 5}, {0, 0}, {6, 5}} {
		if _, err := NewWeaklyHard(mk[0], mk[1]); err == nil {
			t.Errorf("invalid constraint (%d,%d) accepted", mk[0], mk[1])
		}
	}
	if _, err := NewWeaklyHard(1, 5); err != nil {
		t.Fatal(err)
	}
}

func TestWeaklyHardHoldsOnIsolatedMisses(t *testing.T) {
	w, err := NewWeaklyHard(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// One miss per 5 jobs: constraint holds.
	for i := 0; i < 50; i++ {
		if ok := w.Note(i%5 == 0); !ok {
			t.Fatalf("constraint broken at job %d with isolated misses", i)
		}
	}
	if !w.Holds() || w.Violations() != 0 {
		t.Error("isolated misses should satisfy (1,5)")
	}
	if w.WorstWindow() != 1 {
		t.Errorf("WorstWindow = %d, want 1", w.WorstWindow())
	}
	if w.MaxBurst() != 1 {
		t.Errorf("MaxBurst = %d, want 1", w.MaxBurst())
	}
	if w.Decided() != 50 {
		t.Errorf("Decided = %d, want 50", w.Decided())
	}
}

func TestWeaklyHardBreaksOnBurst(t *testing.T) {
	w, err := NewWeaklyHard(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := []bool{false, false, true, true, false, false, false}
	var broke bool
	for _, m := range outcomes {
		if !w.Note(m) {
			broke = true
		}
	}
	if !broke || w.Holds() {
		t.Error("two consecutive misses should break (1,5)")
	}
	if w.WorstWindow() != 2 {
		t.Errorf("WorstWindow = %d, want 2", w.WorstWindow())
	}
	if w.MaxBurst() != 2 {
		t.Errorf("MaxBurst = %d, want 2", w.MaxBurst())
	}
	if w.Violations() == 0 {
		t.Error("no violations counted")
	}
}

func TestWeaklyHardWindowSlides(t *testing.T) {
	w, err := NewWeaklyHard(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Misses: m m _ m m -> windows of 3 never exceed 2.
	for i, m := range []bool{true, true, false, true, true} {
		if ok := w.Note(m); !ok {
			t.Fatalf("constraint unexpectedly broken at %d", i)
		}
	}
	// Now a third consecutive miss within a window of 3 breaks it.
	if w.Note(true) {
		t.Error("3 misses in a 3-window should break (2,3)")
	}
}

// Property: with miss probability 0, the constraint always holds; with all
// misses, it breaks as soon as the window fills past m.
func TestQuickWeaklyHardExtremes(t *testing.T) {
	f := func(mRaw, kRaw uint8) bool {
		k := int(kRaw%10) + 2
		m := int(mRaw) % (k - 1)
		clean, err := NewWeaklyHard(m, k)
		if err != nil {
			return false
		}
		for i := 0; i < 3*k; i++ {
			if !clean.Note(false) {
				return false
			}
		}
		dirty, err := NewWeaklyHard(m, k)
		if err != nil {
			return false
		}
		for i := 0; i < 3*k; i++ {
			dirty.Note(true)
		}
		return clean.Holds() && !dirty.Holds() && dirty.WorstWindow() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
