// Package sched defines the scheduling framework of the HCPerf evaluation:
// ready-queue jobs, the Scheduler policy interface, the four baseline
// policies (HPF, EDF, EDF-VD, Apollo) and HCPerf's Dynamic Priority
// Scheduler (paper §V).
//
// Scheduling is non-preemptive over M identical processors: whenever a
// processor is idle and jobs are ready, the engine asks the policy which job
// to dispatch there; the job then runs to completion.
package sched

import (
	"hcperf/internal/dag"
	"hcperf/internal/simtime"
)

// Job is one release of a task inside a control cycle.
type Job struct {
	// Task is the graph task this job instantiates.
	Task *dag.Task
	// Cycle is the release sequence number of the job's pipeline.
	Cycle uint64
	// Release is when the job entered the ready queue.
	Release simtime.Time
	// AbsDeadline is Release + Task.RelDeadline.
	AbsDeadline simtime.Time
	// EstExec is the execution time of the task as observed by the
	// system (c_i in the paper: the duration of the task's last run, or
	// the nominal model value before any observation).
	EstExec simtime.Duration
	// SourceTime is the release instant of the earliest sensing job
	// whose data flows into this job; the scenario uses it to compute
	// control commands from appropriately stale sensor data.
	SourceTime simtime.Time

	// arenaSlot is the job's slot in its owning JobArena; meaningless
	// (zero) for jobs constructed outside an arena.
	arenaSlot int32
}

// LatestStart returns the absolute latest instant the job may start and
// still meet its deadline given the observed execution time: the absolute
// form of the paper's scheduling deadline d_i = D_i - c_i (Eq. 9).
func (j *Job) LatestStart() simtime.Time { return j.AbsDeadline - j.EstExec }

// Slack returns how much later than now the job could start and still meet
// its deadline.
func (j *Job) Slack(now simtime.Time) simtime.Duration { return j.LatestStart() - now }

// ProcState describes the processor pool at a scheduling decision.
type ProcState struct {
	// NumProcs is the number of identical processors (n_p).
	NumProcs int
	// Remaining[p] is the remaining processing time of the job running
	// on processor p (T_p), zero when idle.
	Remaining []simtime.Duration
}

// TotalRemaining returns the sum of T_p over all processors.
func (s *ProcState) TotalRemaining() simtime.Duration {
	var sum simtime.Duration
	for _, r := range s.Remaining {
		sum += r
	}
	return sum
}

// Scheduler selects the next job to dispatch. Implementations must be
// deterministic functions of their inputs and internal configuration.
type Scheduler interface {
	// Name identifies the policy in traces and reports.
	Name() string
	// Select returns the index into ready of the job to run on processor
	// proc, or -1 to leave the processor idle. ready is never reordered
	// by the caller during the call.
	Select(now simtime.Time, ready []*Job, proc int, state *ProcState) int
}

// pickBest returns the index of the minimum-key eligible job, breaking ties
// by earlier release and then lower task ID so every policy is
// deterministic. eligible may be nil (all jobs eligible).
func pickBest(ready []*Job, eligible func(*Job) bool, key func(*Job) float64) int {
	best := -1
	var bestKey float64
	for i, j := range ready {
		if eligible != nil && !eligible(j) {
			continue
		}
		k := key(j)
		if best == -1 || better(k, j, bestKey, ready[best]) {
			best = i
			bestKey = k
		}
	}
	return best
}

func better(k float64, j *Job, bestKey float64, best *Job) bool {
	if k != bestKey {
		return k < bestKey
	}
	if j.Release != best.Release {
		return j.Release < best.Release
	}
	return j.Task.ID < best.Task.ID
}

// HPF is the High-Priority-First baseline: the ready job with the smallest
// statically configured priority value runs first, non-preemptively.
type HPF struct{}

// Name implements Scheduler.
func (HPF) Name() string { return "HPF" }

// Select implements Scheduler.
func (HPF) Select(_ simtime.Time, ready []*Job, _ int, _ *ProcState) int {
	return pickBest(ready, nil, func(j *Job) float64 { return float64(j.Task.Priority) })
}

// EDF is the Earliest-Deadline-First baseline: the ready job with the
// earliest absolute deadline runs first.
type EDF struct{}

// Name implements Scheduler.
func (EDF) Name() string { return "EDF" }

// Select implements Scheduler.
func (EDF) Select(_ simtime.Time, ready []*Job, _ int, _ *ProcState) int {
	return pickBest(ready, nil, func(j *Job) float64 { return float64(j.AbsDeadline) })
}

// EDFVD is the EDF-VD baseline: high-criticality tasks are scheduled by a
// virtual deadline shortened with the scaling factor X in (0,1]; low-
// criticality tasks keep their actual deadlines. Everything then runs EDF.
type EDFVD struct {
	// X is the virtual-deadline scaling factor applied to
	// high-criticality tasks. Values outside (0,1] are treated as 1
	// (plain EDF).
	X float64
}

// NewEDFVD builds an EDF-VD scheduler with the given scaling factor.
func NewEDFVD(x float64) *EDFVD { return &EDFVD{X: x} }

// Name implements Scheduler.
func (s *EDFVD) Name() string { return "EDF-VD" }

// Select implements Scheduler.
func (s *EDFVD) Select(_ simtime.Time, ready []*Job, _ int, _ *ProcState) int {
	x := s.X
	if x <= 0 || x > 1 {
		x = 1
	}
	return pickBest(ready, nil, func(j *Job) float64 {
		if j.Task.Criticality == dag.HighCriticality {
			return float64(j.Release) + x*float64(j.Task.RelDeadline)
		}
		return float64(j.AbsDeadline)
	})
}

// Apollo is the state-of-the-practice baseline: tasks are statically bound
// to processors (dag.Task.Processor, a 1-based binding label) and each
// processor picks its highest static priority job. Unbound tasks
// (Processor < 0) may run anywhere.
//
// Labels are mapped to processors in contiguous blocks — label L of
// NumLabels runs on processor (L-1)·M/NumLabels — mirroring how Apollo
// deployments group pipeline stages (perception node, planning node) when
// fewer processors than binding groups are available.
type Apollo struct {
	// NumLabels is the size of the binding-label space (default 4, the
	// AD graph's label count).
	NumLabels int
}

// Name implements Scheduler.
func (Apollo) Name() string { return "Apollo" }

// Select implements Scheduler.
func (a Apollo) Select(_ simtime.Time, ready []*Job, proc int, state *ProcState) int {
	labels := a.NumLabels
	if labels <= 0 {
		labels = 4
	}
	return pickBest(ready, func(j *Job) bool {
		return boundProcessor(j.Task, state.NumProcs, labels) == proc || j.Task.Processor < 0
	}, func(j *Job) float64 { return float64(j.Task.Priority) })
}

// boundProcessor maps a task's 1-based binding label onto a processor
// index, or -1 when unbound. Labels beyond the label space wrap.
func boundProcessor(t *dag.Task, numProcs, numLabels int) int {
	if t.Processor < 1 || numProcs <= 0 {
		return -1
	}
	label := (t.Processor - 1) % numLabels
	return label * numProcs / numLabels
}
