package sched

// DispatchOrder is a heap-ranked view of the queue snapshot; these tests
// pin its contract: the ranking equals what draining the queue through
// Select would dispatch, rebuilds are lazy, and steady-state calls do not
// allocate.

import (
	"math/rand"
	"testing"

	"hcperf/internal/simtime"
)

func TestDispatchOrderMatchesSelectDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(24)
		jobs := randomJobs(rng, n, 0)
		st := &ProcState{NumProcs: 2, Remaining: make([]simtime.Duration, 2)}
		d := NewDynamic(0.02)
		d.SetNominalU(rng.Float64() * 0.02)
		d.Recompute(0, jobs, st)

		got := d.DispatchOrder()
		want := drain(d, jobs, st)
		if len(got) != len(want) {
			t.Fatalf("trial %d: DispatchOrder has %d jobs, Select drain %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (γ=%g): rank %d differs: heap %+v vs drain %+v",
					trial, d.Gamma(), i, got[i], want[i])
			}
		}
	}
}

func TestDispatchOrderLazyRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	jobs := randomJobs(rng, 16, 0)
	st := &ProcState{NumProcs: 2, Remaining: make([]simtime.Duration, 2)}
	d := NewDynamic(0.02)
	d.Recompute(0, jobs, st)

	first := d.DispatchOrder()
	// Unchanged γ and queue: the same backing slice comes back, unrebuilt.
	again := d.DispatchOrder()
	if &first[0] != &again[0] || len(first) != len(again) {
		t.Error("DispatchOrder rebuilt despite unchanged scheduler state")
	}
	// A new Recompute (even with γ forced to a new value) marks the
	// ranking dirty and produces a fresh, consistent ordering.
	d.SetNominalU(0.02)
	d.Recompute(0, jobs, st)
	reranked := d.DispatchOrder()
	want := drain(d, jobs, st)
	for i := range reranked {
		if reranked[i] != want[i] {
			t.Fatalf("post-Recompute rank %d differs from Select drain", i)
		}
	}
}

func TestDispatchOrderSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	jobs := randomJobs(rng, 32, 0)
	st := &ProcState{NumProcs: 2, Remaining: make([]simtime.Duration, 2)}
	d := NewDynamic(0.02)
	d.SetNominalU(0.01)
	// Warm the scratch buffers and the heap storage once.
	d.Recompute(0, jobs, st)
	d.DispatchOrder()

	allocs := testing.AllocsPerRun(100, func() {
		d.Recompute(0, jobs, st)
		d.DispatchOrder()
	})
	if allocs != 0 {
		t.Errorf("steady-state Recompute+DispatchOrder allocates %v objects/op, want 0", allocs)
	}
}
