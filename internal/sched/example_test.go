package sched_test

import (
	"fmt"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

const ms = simtime.Millisecond

// The Dynamic Priority Scheduler interpolates between deadline-driven and
// priority-driven dispatch: with γ = 0 the urgent low-priority job wins;
// once the Performance Directed Controller pushes u (and hence γ) up, the
// high-priority control job wins.
func ExampleDynamic() {
	control := &sched.Job{
		Task: &dag.Task{
			ID: 0, Name: "control", Priority: 1,
			RelDeadline: 500 * ms, Exec: exectime.Constant(3 * ms),
		},
		AbsDeadline: 500 * ms, EstExec: 3 * ms,
	}
	detection := &sched.Job{
		Task: &dag.Task{
			ID: 1, Name: "detection", Priority: 11,
			RelDeadline: 40 * ms, Exec: exectime.Constant(12 * ms),
		},
		AbsDeadline: 40 * ms, EstExec: 12 * ms,
	}
	ready := []*sched.Job{control, detection}
	state := &sched.ProcState{NumProcs: 2, Remaining: make([]simtime.Duration, 2)}

	dyn := sched.NewDynamic(0.1)

	// Driving performance is fine: u = 0, γ = 0, least-slack dispatch.
	dyn.SetNominalU(0)
	dyn.Recompute(0, ready, state)
	fmt.Println("γ=0:   ", ready[dyn.Select(0, ready, 0, state)].Task.Name)

	// Tracking error grew: the controller raised u, γ follows, and the
	// control task jumps the queue.
	dyn.SetNominalU(0.1)
	dyn.Recompute(0, ready, state)
	fmt.Println("γ=0.1: ", ready[dyn.Select(0, ready, 0, state)].Task.Name)
	// Output:
	// γ=0:    detection
	// γ=0.1:  control
}
