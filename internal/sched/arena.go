package sched

// JobArena is a per-run allocator for Job records: dense fixed-size chunks
// plus an int32 slot freelist. Jobs a kernel creates and retires every cycle
// come out of recycled slots instead of fresh heap allocations, so the
// kernel's working set stays GC-flat — chunks are allocated once and the
// collector never traces churning job garbage.
//
// Chunks are never moved or released, so *Job pointers handed out by New
// remain stable for the life of the arena; the ready queue and scheduling
// policies keep working on []*Job unchanged. A slot is reused only after
// Free, which is the owner's promise that no consumer retains the pointer —
// the same non-retention contract Backend.ProcState already imposes.
//
// The zero JobArena is ready to use. It is not safe for concurrent use; the
// kernel only calls it from the backend's execution context.
type JobArena struct {
	chunks []*[arenaChunkSize]Job
	free   []int32
	next   int32 // high-water slot count
}

const (
	arenaChunkShift = 6
	arenaChunkSize  = 1 << arenaChunkShift
	arenaChunkMask  = arenaChunkSize - 1
)

// New returns a zeroed Job from a recycled slot, growing the arena by one
// chunk when none are free. Callers fill the public fields; Task must end up
// non-nil (a nil Task marks a free slot).
func (a *JobArena) New() *Job {
	var slot int32
	if n := len(a.free); n > 0 {
		slot = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		slot = a.next
		if int(slot>>arenaChunkShift) == len(a.chunks) {
			a.chunks = append(a.chunks, new([arenaChunkSize]Job))
		}
		a.next++
	}
	j := &a.chunks[slot>>arenaChunkShift][slot&arenaChunkMask]
	*j = Job{arenaSlot: slot}
	return j
}

// Free returns a job's slot to the arena. The job must have come from New on
// this arena and must no longer be referenced anywhere; freeing a job twice
// panics (a live arena job always has a non-nil Task).
func (a *JobArena) Free(j *Job) {
	if j.Task == nil {
		panic("sched: JobArena.Free of an already-free job")
	}
	j.Task = nil
	a.free = append(a.free, j.arenaSlot)
}

// InUse reports the number of live (allocated, not yet freed) jobs.
func (a *JobArena) InUse() int { return int(a.next) - len(a.free) }
