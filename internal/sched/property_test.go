package sched

// Property tests for the Dynamic scheduler (paper §V): randomized queues
// check the two structural guarantees the rest of the system leans on —
// γ = 0 degenerates to deadline-driven dispatch, and the Eq. 11 γmax search
// never reports a γ under which the queue is unschedulable.

import (
	"math/rand"
	"testing"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/simtime"
)

// randomJobs builds a random ready queue. With exec <= 0 each job gets its
// own random execution-time estimate; otherwise all jobs share exec.
func randomJobs(rng *rand.Rand, n int, exec simtime.Duration) []*Job {
	jobs := make([]*Job, n)
	for i := range jobs {
		c := exec
		if c <= 0 {
			c = simtime.Duration(0.001 + rng.Float64()*0.03)
		}
		release := simtime.Time(rng.Float64() * 0.05)
		rel := simtime.Duration(0.02 + rng.Float64()*0.2)
		jobs[i] = &Job{
			Task: &dag.Task{
				ID:          dag.TaskID(rng.Intn(8)), // collisions exercise tie-breaks
				Name:        "t",
				Priority:    rng.Intn(23) + 1,
				RelDeadline: rel,
				Exec:        exectime.Constant(c),
			},
			Release:     release,
			AbsDeadline: release + simtime.Time(rel),
			EstExec:     c,
		}
	}
	return jobs
}

// drain repeatedly selects and removes jobs until the queue is empty,
// returning the dispatched jobs in order.
func drain(s Scheduler, queue []*Job, st *ProcState) []*Job {
	q := append([]*Job(nil), queue...)
	var order []*Job
	for len(q) > 0 {
		idx := s.Select(0, q, 0, st)
		if idx < 0 {
			break
		}
		order = append(order, q[idx])
		q = append(q[:idx], q[idx+1:]...)
	}
	return order
}

// TestDynamicGammaZeroMatchesEDF: with γ = 0 the dynamic priority reduces
// to the latest feasible start d_i = deadline_i − c_i; when all jobs share
// one execution-time estimate that is a constant shift of the EDF key, so
// the full dispatch sequence — tie-breaks included — must equal EDF's.
func TestDynamicGammaZeroMatchesEDF(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := &ProcState{NumProcs: 2, Remaining: make([]simtime.Duration, 2)}
	for trial := 0; trial < 300; trial++ {
		jobs := randomJobs(rng, 1+rng.Intn(24), simtime.Duration(0.005))
		dyn := NewDynamic(0) // γ stays 0: no u installed, no Recompute
		gotOrder := drain(dyn, jobs, st)
		wantOrder := drain(EDF{}, jobs, st)
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("trial %d: dispatched %d jobs, EDF dispatched %d", trial, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("trial %d: dispatch %d is job(dl=%v rel=%v id=%d), EDF picked job(dl=%v rel=%v id=%d)",
					trial, i,
					gotOrder[i].AbsDeadline, gotOrder[i].Release, gotOrder[i].Task.ID,
					wantOrder[i].AbsDeadline, wantOrder[i].Release, wantOrder[i].Task.ID)
			}
		}
	}
}

// TestGammaMaxNeverAdmitsUnschedulable: for random queues, processor pools
// and controller signals, Recompute must only report a γmax that satisfies
// the Eq. 11 constraint set, and the Eq. 12 clamp must keep the effective γ
// inside [0, γmax] — with γ forced to 0 whenever the queue is overloaded.
func TestGammaMaxNeverAdmitsUnschedulable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 500; trial++ {
		jobs := randomJobs(rng, rng.Intn(24), 0)
		np := 1 + rng.Intn(4)
		st := &ProcState{NumProcs: np, Remaining: make([]simtime.Duration, np)}
		for p := range st.Remaining {
			if rng.Intn(2) == 0 {
				st.Remaining[p] = simtime.Duration(rng.Float64() * 0.02)
			}
		}
		d := NewDynamic(0)
		u := (rng.Float64()*3 - 1) * d.GammaCap // spans below 0 and above the cap
		d.SetNominalU(u)
		now := simtime.Time(rng.Float64() * 0.01)
		d.Recompute(now, jobs, st)

		gamma, gammaMax := d.Gamma(), d.GammaMax()
		if gammaMax < 0 || gammaMax > d.GammaCap {
			t.Fatalf("trial %d: γmax %v outside [0, cap=%v]", trial, gammaMax, d.GammaCap)
		}
		if gamma < 0 || gamma > gammaMax {
			t.Fatalf("trial %d: clamp violated: γ=%v outside [0, γmax=%v] (u=%v)", trial, gamma, gammaMax, u)
		}
		if want := clampGamma(u, gammaMax); gamma != want {
			t.Fatalf("trial %d: γ=%v, Eq. 12 clamp of u=%v gives %v", trial, gamma, u, want)
		}
		if d.Overloaded() {
			if gamma != 0 || gammaMax != 0 {
				t.Fatalf("trial %d: overloaded queue admitted γ=%v γmax=%v, want 0", trial, gamma, gammaMax)
			}
			if len(jobs) > 0 && d.feasible(0, now, jobs, st) {
				t.Fatalf("trial %d: flagged overloaded but γ=0 is feasible", trial)
			}
			continue
		}
		if len(jobs) > 0 && !d.feasible(gammaMax, now, jobs, st) {
			t.Fatalf("trial %d: Recompute admitted unschedulable queue: γmax=%v infeasible for %d jobs on %d procs",
				trial, gammaMax, len(jobs), np)
		}
	}
}
