package sched

import "container/heap"

// jobHeap is a binary min-heap over a queue snapshot keyed on the dynamic
// priority P_i, with the same deterministic tie-breaks pickBest applies:
// smaller key first, then earlier release, then lower task ID, then arrival
// order. The last tie-break makes the order a total order, so the heap's
// pop sequence is unique — identical to a stable sort under the same key —
// and DispatchOrder stays bit-for-bit consistent with Select.
//
// The heap owns no jobs; it ranks the snapshot the Dynamic scheduler
// captured at its last Recompute and reuses its entry storage across
// rebuilds.
type jobHeap struct {
	jobs []*Job
	keys []float64
	seq  []int
}

func (h *jobHeap) Len() int { return len(h.seq) }

func (h *jobHeap) Less(a, b int) bool {
	i, j := h.seq[a], h.seq[b]
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	ji, jj := h.jobs[i], h.jobs[j]
	if ji.Release != jj.Release {
		return ji.Release < jj.Release
	}
	if ji.Task.ID != jj.Task.ID {
		return ji.Task.ID < jj.Task.ID
	}
	return i < j
}

func (h *jobHeap) Swap(a, b int) { h.seq[a], h.seq[b] = h.seq[b], h.seq[a] }

// Push and Pop satisfy heap.Interface; rank only ever shrinks the heap, so
// Push is never reached.
func (h *jobHeap) Push(x any) { h.seq = append(h.seq, x.(int)) }

func (h *jobHeap) Pop() any {
	old := h.seq
	n := len(old)
	x := old[n-1]
	h.seq = old[:n-1]
	return x
}

// rank heapifies the snapshot under the keys produced by fill and drains the
// heap into out, returning the jobs in dispatch order. All storage (keys,
// heap entries, the output slice) is reused across calls.
func (h *jobHeap) rank(jobs []*Job, fill func(keys []float64), out []*Job) []*Job {
	n := len(jobs)
	if cap(h.keys) < n {
		h.keys = make([]float64, n)
		h.seq = make([]int, 0, n)
	}
	h.jobs = jobs
	h.keys = h.keys[:n]
	fill(h.keys)
	h.seq = h.seq[:n]
	for i := range h.seq {
		h.seq[i] = i
	}
	heap.Init(h)
	if cap(out) < n {
		out = make([]*Job, 0, n)
	}
	out = out[:0]
	for h.Len() > 0 {
		out = append(out, jobs[heap.Pop(h).(int)])
	}
	h.jobs = nil // drop the reference; the snapshot owns the jobs
	return out
}
