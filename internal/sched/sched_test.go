package sched

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/simtime"
)

const ms = simtime.Millisecond

// job builds a ready job directly, bypassing the engine.
func job(id dag.TaskID, prio int, release, relDeadline, estExec simtime.Duration, opts ...func(*Job)) *Job {
	t := &dag.Task{
		ID:          id,
		Name:        "t" + string(rune('0'+id)),
		Priority:    prio,
		RelDeadline: relDeadline,
		Exec:        exectime.Constant(estExec),
		Criticality: dag.LowCriticality,
		Processor:   -1,
	}
	j := &Job{
		Task:        t,
		Release:     release,
		AbsDeadline: release + relDeadline,
		EstExec:     estExec,
	}
	for _, o := range opts {
		o(j)
	}
	return j
}

func highCrit(j *Job) { j.Task.Criticality = dag.HighCriticality }

func boundTo(label int) func(*Job) {
	return func(j *Job) { j.Task.Processor = label }
}

func state(nprocs int, remaining ...simtime.Duration) *ProcState {
	rem := make([]simtime.Duration, nprocs)
	copy(rem, remaining)
	return &ProcState{NumProcs: nprocs, Remaining: rem}
}

func TestJobDerivedTimes(t *testing.T) {
	j := job(0, 3, 10, 50*ms, 10*ms)
	if got := j.LatestStart(); math.Abs(float64(got-(10+40*ms))) > 1e-12 {
		t.Errorf("LatestStart = %v, want %v", got, simtime.Time(10+40*ms))
	}
	if got := j.Slack(10); math.Abs(float64(got-40*ms)) > 1e-12 {
		t.Errorf("Slack = %v, want 40ms", got)
	}
}

func TestProcStateTotalRemaining(t *testing.T) {
	s := state(3, 5*ms, 0, 7*ms)
	if got := s.TotalRemaining(); got != 12*ms {
		t.Errorf("TotalRemaining = %v, want 12ms", got)
	}
}

func TestHPF(t *testing.T) {
	ready := []*Job{
		job(0, 5, 0, 100*ms, 10*ms),
		job(1, 2, 0, 100*ms, 10*ms),
		job(2, 7, 0, 100*ms, 10*ms),
	}
	if got := (HPF{}).Select(0, ready, 0, state(1)); got != 1 {
		t.Errorf("HPF picked index %d, want 1 (priority 2)", got)
	}
	if got := (HPF{}).Select(0, nil, 0, state(1)); got != -1 {
		t.Errorf("HPF on empty queue = %d, want -1", got)
	}
}

func TestHPFTieBreaksByRelease(t *testing.T) {
	ready := []*Job{
		job(0, 2, 5, 100*ms, 10*ms),
		job(1, 2, 1, 100*ms, 10*ms),
	}
	if got := (HPF{}).Select(5, ready, 0, state(1)); got != 1 {
		t.Errorf("HPF tie-break picked %d, want 1 (earlier release)", got)
	}
}

func TestEDF(t *testing.T) {
	ready := []*Job{
		job(0, 1, 0, 100*ms, 10*ms), // deadline 100ms, highest static prio
		job(1, 9, 0, 40*ms, 10*ms),  // deadline 40ms
		job(2, 5, 0, 70*ms, 10*ms),
	}
	if got := (EDF{}).Select(0, ready, 0, state(1)); got != 1 {
		t.Errorf("EDF picked index %d, want 1 (earliest deadline)", got)
	}
}

func TestEDFVD(t *testing.T) {
	// Low-crit deadline 50ms vs high-crit deadline 80ms: plain EDF would
	// pick the low-crit job; with X=0.5 the high-crit virtual deadline is
	// 40ms and wins.
	ready := []*Job{
		job(0, 5, 0, 50*ms, 10*ms),
		job(1, 5, 0, 80*ms, 10*ms, highCrit),
	}
	if got := NewEDFVD(0.5).Select(0, ready, 0, state(1)); got != 1 {
		t.Errorf("EDF-VD picked %d, want 1 (virtual deadline)", got)
	}
	// Degenerate X behaves as plain EDF.
	for _, x := range []float64{0, -1, 2} {
		if got := NewEDFVD(x).Select(0, ready, 0, state(1)); got != 0 {
			t.Errorf("EDF-VD X=%v picked %d, want 0 (plain EDF)", x, got)
		}
	}
}

func TestApolloBinding(t *testing.T) {
	ready := []*Job{
		job(0, 1, 0, 100*ms, 10*ms, boundTo(1)), // block-maps to proc 0
		job(1, 2, 0, 100*ms, 10*ms, boundTo(3)), // block-maps to proc 1
		job(2, 3, 0, 100*ms, 10*ms),             // unbound
	}
	st := state(2)
	if got := (Apollo{}).Select(0, ready, 0, st); got != 0 {
		t.Errorf("Apollo proc0 picked %d, want 0", got)
	}
	if got := (Apollo{}).Select(0, ready, 1, st); got != 1 {
		t.Errorf("Apollo proc1 picked %d, want 1", got)
	}
	// Only the unbound job is eligible on proc 1 when the bound one is
	// removed.
	ready2 := []*Job{ready[0], ready[2]}
	if got := (Apollo{}).Select(0, ready2, 1, st); got != 1 {
		t.Errorf("Apollo proc1 picked %d, want 1 (unbound job)", got)
	}
	// No eligible job => idle.
	ready3 := []*Job{ready[0]}
	if got := (Apollo{}).Select(0, ready3, 1, st); got != -1 {
		t.Errorf("Apollo proc1 with only proc0-bound job = %d, want -1", got)
	}
}

func TestApolloBindingWraps(t *testing.T) {
	// Label 5 in a 4-label space wraps to label 1 -> processor 0.
	ready := []*Job{job(0, 1, 0, 100*ms, 10*ms, boundTo(5))}
	if got := (Apollo{}).Select(0, ready, 0, state(4)); got != 0 {
		t.Errorf("Apollo wrap binding picked %d, want 0", got)
	}
}

func TestApolloBlockMapping(t *testing.T) {
	// With 2 processors and 4 labels, labels 1-2 run on processor 0 and
	// labels 3-4 on processor 1 (perception node / planning node).
	tests := []struct {
		label, proc int
	}{
		{label: 1, proc: 0},
		{label: 2, proc: 0},
		{label: 3, proc: 1},
		{label: 4, proc: 1},
	}
	for _, tt := range tests {
		ready := []*Job{job(0, 1, 0, 100*ms, 10*ms, boundTo(tt.label))}
		st := state(2)
		if got := (Apollo{}).Select(0, ready, tt.proc, st); got != 0 {
			t.Errorf("label %d not eligible on proc %d", tt.label, tt.proc)
		}
		other := 1 - tt.proc
		if got := (Apollo{}).Select(0, ready, other, st); got != -1 {
			t.Errorf("label %d unexpectedly eligible on proc %d", tt.label, other)
		}
	}
}

func TestDynamicGammaZeroIsLeastSlack(t *testing.T) {
	d := NewDynamic(0.02)
	// γ = 0 by default (no Recompute, nominal u = 0).
	ready := []*Job{
		job(0, 1, 0, 100*ms, 5*ms), // latest start 95ms
		job(1, 9, 0, 30*ms, 20*ms), // latest start 10ms  <- most urgent
		job(2, 5, 0, 60*ms, 10*ms), // latest start 50ms
	}
	if got := d.Select(0, ready, 0, state(2)); got != 1 {
		t.Errorf("Dynamic γ=0 picked %d, want 1 (least slack)", got)
	}
}

func TestDynamicLargeGammaIsPriorityFirst(t *testing.T) {
	d := NewDynamic(10)
	d.SetNominalU(10)
	ready := []*Job{
		job(0, 1, 0, 1000*ms, 5*ms), // highest static priority, loose deadline
		job(1, 9, 0, 30*ms, 20*ms),  // urgent but low priority
	}
	// Light load: γmax should reach the cap, γ = u = 10, and γ·Δp = 80
	// dwarfs the sub-second deadline spread... but the 30ms deadline job
	// must still be schedulable for γmax to stay at cap. Use a state with
	// idle processors.
	d.Recompute(0, ready, state(2))
	if d.Overloaded() {
		t.Fatal("unexpected overload")
	}
	if got := d.Select(0, ready, 0, state(2)); got != 0 {
		t.Errorf("Dynamic large γ picked %d, want 0 (static priority)", got)
	}
}

func TestDynamicRecomputeEmptyQueue(t *testing.T) {
	d := NewDynamic(0.02)
	d.SetNominalU(0.5)
	d.Recompute(0, nil, state(2))
	if d.Overloaded() {
		t.Error("empty queue flagged overloaded")
	}
	if d.GammaMax() != 0.02 {
		t.Errorf("γmax = %v, want cap 0.02", d.GammaMax())
	}
	if d.Gamma() != 0.02 {
		t.Errorf("γ = %v, want clamp(0.5)=cap", d.Gamma())
	}
}

func TestDynamicOverload(t *testing.T) {
	d := NewDynamic(0.02)
	d.SetNominalU(0.01)
	// Execution time exceeds the deadline: infeasible at any γ.
	ready := []*Job{job(0, 1, 0, 10*ms, 50*ms)}
	d.Recompute(0, ready, state(1))
	if !d.Overloaded() {
		t.Error("overload not detected")
	}
	if d.Gamma() != 0 {
		t.Errorf("γ = %v under overload, want 0", d.Gamma())
	}
}

func TestDynamicGammaClamp(t *testing.T) {
	tests := []struct {
		name string
		u    float64
		max  float64
		want float64
	}{
		{name: "negative u", u: -1, max: 0.5, want: 0},
		{name: "inside", u: 0.3, max: 0.5, want: 0.3},
		{name: "above max", u: 0.9, max: 0.5, want: 0.5},
		{name: "zero max", u: 0.9, max: 0, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := clampGamma(tt.u, tt.max); got != tt.want {
				t.Errorf("clampGamma(%v,%v) = %v, want %v", tt.u, tt.max, got, tt.want)
			}
		})
	}
}

func TestDynamicGammaMaxShrinksUnderPressure(t *testing.T) {
	d := NewDynamic(0.02)
	light := []*Job{
		job(0, 1, 0, 500*ms, 5*ms),
		job(1, 9, 0, 500*ms, 5*ms),
	}
	d.Recompute(0, light, state(2))
	lightMax := d.GammaMax()

	// Tight deadlines force deadline-driven dispatch: γmax must shrink.
	tight := []*Job{
		job(0, 1, 0, 500*ms, 5*ms),
		job(1, 9, 0, 12*ms, 5*ms),
		job(2, 8, 0, 18*ms, 5*ms),
		job(3, 7, 0, 24*ms, 5*ms),
	}
	d.Recompute(0, tight, state(1))
	tightMax := d.GammaMax()
	if d.Overloaded() {
		t.Fatal("tight queue unexpectedly overloaded")
	}
	if tightMax >= lightMax {
		t.Errorf("γmax did not shrink under pressure: light %v, tight %v", lightMax, tightMax)
	}
}

func TestDynamicBusyProcessorsCountAgainstFeasibility(t *testing.T) {
	d := NewDynamic(0.02)
	ready := []*Job{job(0, 1, 0, 20*ms, 10*ms)}
	d.Recompute(0, ready, state(1, 0))
	if d.Overloaded() {
		t.Fatal("idle processor should be feasible")
	}
	// Same queue, but the single processor is busy for 15ms: 10+15 > 20.
	d.Recompute(0, ready, state(1, 15*ms))
	if !d.Overloaded() {
		t.Error("busy processor not counted against feasibility")
	}
}

func TestDynamicDefaults(t *testing.T) {
	d := NewDynamic(0)
	if d.GammaCap != DefaultGammaCap {
		t.Errorf("GammaCap = %v, want default", d.GammaCap)
	}
	if d.Name() != "HCPerf" {
		t.Errorf("Name = %q", d.Name())
	}
	d.SetNominalU(0.01)
	if d.NominalU() != 0.01 {
		t.Errorf("NominalU = %v", d.NominalU())
	}
	if d.String() == "" {
		t.Error("String empty")
	}
}

// Property: every policy returns either -1 or a valid index, and HPF/EDF
// return a job minimal under their key.
func TestQuickPoliciesSelectValidAndMinimal(t *testing.T) {
	policies := []Scheduler{HPF{}, EDF{}, NewEDFVD(0.7), Apollo{}, NewDynamic(0.02)}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%20) + 1
		ready := make([]*Job, count)
		for i := range ready {
			opts := []func(*Job){}
			if rng.Intn(2) == 0 {
				opts = append(opts, boundTo(rng.Intn(4)+1))
			}
			if rng.Intn(3) == 0 {
				opts = append(opts, highCrit)
			}
			ready[i] = job(dag.TaskID(i), rng.Intn(23)+1,
				simtime.Duration(rng.Float64()),
				simtime.Duration(rng.Float64()*0.2+0.001),
				simtime.Duration(rng.Float64()*0.05+0.001), opts...)
		}
		st := state(4)
		now := simtime.Time(1.5)
		for _, p := range policies {
			idx := p.Select(now, ready, rng.Intn(4), st)
			if idx < -1 || idx >= count {
				return false
			}
		}
		// Minimality for HPF and EDF.
		if idx := (HPF{}).Select(now, ready, 0, st); idx >= 0 {
			for _, j := range ready {
				if j.Task.Priority < ready[idx].Task.Priority {
					return false
				}
			}
		}
		if idx := (EDF{}).Select(now, ready, 0, st); idx >= 0 {
			for _, j := range ready {
				if j.AbsDeadline < ready[idx].AbsDeadline {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: γ returned by Recompute is always in [0, GammaCap] and equals
// clamp(u, 0, γmax).
func TestQuickGammaWithinBounds(t *testing.T) {
	f := func(seed int64, uRaw int16, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDynamic(0.02)
		u := float64(uRaw) / 1000
		d.SetNominalU(u)
		count := int(n % 15)
		ready := make([]*Job, count)
		for i := range ready {
			ready[i] = job(dag.TaskID(i), rng.Intn(23)+1,
				0,
				simtime.Duration(rng.Float64()*0.2+0.001),
				simtime.Duration(rng.Float64()*0.05+0.001))
		}
		d.Recompute(0, ready, state(2))
		g := d.Gamma()
		if g < 0 || g > d.GammaCap+1e-12 {
			return false
		}
		return g == clampGamma(u, d.GammaMax())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (Eq. 11 soundness): whenever Recompute reports a feasible γ,
// serving the queue greedily in P_i(γ) order on the n_p processors using
// the estimated execution times meets every job's deadline.
func TestQuickGammaFeasibilityIsSound(t *testing.T) {
	f := func(seed int64, n uint8, uRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%12) + 1
		ready := make([]*Job, count)
		for i := range ready {
			ready[i] = job(dag.TaskID(i), rng.Intn(23)+1,
				0,
				simtime.Duration(rng.Float64()*0.15+0.005),
				simtime.Duration(rng.Float64()*0.03+0.001))
		}
		np := rng.Intn(2) + 1
		st := state(np)
		d := NewDynamic(0.02)
		d.SetNominalU(float64(uRaw) / 255 * 0.02)
		d.Recompute(0, ready, st)
		if d.Overloaded() {
			return true // nothing to verify
		}
		gamma := d.Gamma()

		// Greedy list schedule in P_i(γ) order.
		order := make([]*Job, count)
		copy(order, ready)
		sort.SliceStable(order, func(i, j int) bool {
			return gamma*float64(order[i].Task.Priority)+float64(order[i].LatestStart()) <
				gamma*float64(order[j].Task.Priority)+float64(order[j].LatestStart())
		})
		free := make([]simtime.Time, np)
		for _, j := range order {
			// Earliest-available processor.
			p := 0
			for k := 1; k < np; k++ {
				if free[k] < free[p] {
					p = k
				}
			}
			finish := free[p] + j.EstExec
			free[p] = finish
			if finish >= j.AbsDeadline {
				// Eq. 11 uses an averaged load bound, which is
				// conservative relative to this exact greedy
				// schedule on np=1, but can be optimistic for
				// np>1 (it ignores packing). Accept a small
				// packing slack on multiprocessors.
				if np == 1 {
					t.Logf("γ=%v claimed feasible but job %d finishes %v after deadline %v",
						gamma, j.Task.ID, finish, j.AbsDeadline)
					return false
				}
				if float64(finish-j.AbsDeadline) > float64(j.EstExec) {
					t.Logf("np=%d: job %d overruns deadline by %v (> one job of slack)",
						np, j.Task.ID, finish-j.AbsDeadline)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
