package sched

import (
	"fmt"
	"sort"

	"hcperf/internal/simtime"
)

// Dynamic is HCPerf's Dynamic Priority Scheduler (paper §V). Jobs are
// dispatched by the dynamic scheduling priority
//
//	P_i = γ·p_i + d_i            (Eq. 10)
//
// where p_i is the static priority, d_i is the job's latest feasible start
// time (the absolute form of the scheduling deadline D_i − c_i, Eq. 9) and
// γ ≥ 0 balances deadline-driven against priority-driven dispatch: γ = 0
// degenerates to least-slack (EDF-like) scheduling, large γ approaches
// static-priority scheduling.
//
// γ is derived from the Performance Directed Controller's nominal signal
// u(t): Recompute finds the largest γmax for which every queued job remains
// schedulable under the Eq. 11 load constraints, then clamps u into
// [0, γmax] (Eq. 12). When even γ = 0 is infeasible the system is
// overloaded; γ is forced to 0 and the Overloaded flag is raised for the
// external coordinator.
type Dynamic struct {
	// GammaCap bounds the γ search bracket (constraint 1b, γ^max).
	GammaCap float64
	// BisectIters is the number of bisection refinements when searching
	// γmax; the default (24) resolves γ to GammaCap·2^-24.
	BisectIters int

	nominalU   float64
	gamma      float64
	gammaMax   float64
	overloaded bool
}

// DefaultGammaCap spans enough γ range that γ·Δp can dominate the largest
// deadline spreads (tens of milliseconds across ~23 priority levels).
const DefaultGammaCap = 0.02

// NewDynamic returns a Dynamic scheduler with the given γ cap; cap <= 0
// selects DefaultGammaCap.
func NewDynamic(gammaCap float64) *Dynamic {
	if gammaCap <= 0 {
		gammaCap = DefaultGammaCap
	}
	return &Dynamic{GammaCap: gammaCap, BisectIters: 24}
}

// Name implements Scheduler.
func (d *Dynamic) Name() string { return "HCPerf" }

// SetNominalU installs the Performance Directed Controller output u(t).
// It takes effect at the next Recompute.
func (d *Dynamic) SetNominalU(u float64) { d.nominalU = u }

// NominalU returns the currently installed controller signal.
func (d *Dynamic) NominalU() float64 { return d.nominalU }

// Gamma returns the actual priority-adjustment coefficient in force.
func (d *Dynamic) Gamma() float64 { return d.gamma }

// GammaMax returns the schedulability bound found by the last Recompute.
func (d *Dynamic) GammaMax() float64 { return d.gammaMax }

// Overloaded reports whether the last Recompute found no feasible γ
// (Eq. 11 unsatisfiable even at γ = 0). The external coordinator uses this
// to shed load.
func (d *Dynamic) Overloaded() bool { return d.overloaded }

// Recompute re-derives γmax from the current ready queue and processor
// state, then maps the nominal u into γ per Eq. 12. Call it when the ready
// queue changes materially or when the controller publishes a new u.
//
// Feasibility is not perfectly monotone in γ (the constraint set depends on
// the induced ordering), but it is monotone for the workloads in the paper's
// regime — tight deadlines favour small γ — so a bisection over [0,
// GammaCap] finds γmax to within GammaCap·2^-BisectIters.
func (d *Dynamic) Recompute(now simtime.Time, ready []*Job, state *ProcState) {
	switch {
	case len(ready) == 0:
		// Empty queue: every γ is trivially feasible.
		d.gammaMax = d.GammaCap
		d.overloaded = false
	case !d.feasible(0, now, ready, state):
		d.gammaMax = 0
		d.overloaded = true
	case d.feasible(d.GammaCap, now, ready, state):
		d.gammaMax = d.GammaCap
		d.overloaded = false
	default:
		lo, hi := 0.0, d.GammaCap
		iters := d.BisectIters
		if iters <= 0 {
			iters = 24
		}
		for i := 0; i < iters; i++ {
			mid := (lo + hi) / 2
			if d.feasible(mid, now, ready, state) {
				lo = mid
			} else {
				hi = mid
			}
		}
		d.gammaMax = lo
		d.overloaded = false
	}
	d.gamma = clampGamma(d.nominalU, d.gammaMax)
}

// clampGamma maps the nominal u to the actual γ per Eq. 12.
func clampGamma(u, gammaMax float64) float64 {
	switch {
	case u < 0:
		return 0
	case u > gammaMax:
		return gammaMax
	default:
		return u
	}
}

// feasible checks the Eq. 11 constraint set for a candidate γ: with jobs
// served in P_i(γ) order on n_p processors, every job k must satisfy
//
//	c_k + ΣT_p/n_p + Σ_{P_i<P_k} c_i/n_p  <  deadline_k − now.
func (d *Dynamic) feasible(gamma float64, now simtime.Time, ready []*Job, state *ProcState) bool {
	np := float64(state.NumProcs)
	if np <= 0 {
		return false
	}
	order := make([]*Job, len(ready))
	copy(order, ready)
	sort.SliceStable(order, func(i, j int) bool {
		return d.priorityOf(order[i], gamma) < d.priorityOf(order[j], gamma)
	})
	base := float64(state.TotalRemaining()) / np
	cum := 0.0
	for _, j := range order {
		c := float64(j.EstExec)
		need := c + base + cum/np
		if need >= float64(j.AbsDeadline-now) {
			return false
		}
		cum += c
	}
	return true
}

// priorityOf evaluates Eq. 10 for one job. Smaller is dispatched first.
func (d *Dynamic) priorityOf(j *Job, gamma float64) float64 {
	return gamma*float64(j.Task.Priority) + float64(j.LatestStart())
}

// Select implements Scheduler: the queued job with the smallest dynamic
// priority P_i under the γ currently in force.
func (d *Dynamic) Select(_ simtime.Time, ready []*Job, _ int, _ *ProcState) int {
	return pickBest(ready, nil, func(j *Job) float64 { return d.priorityOf(j, d.gamma) })
}

// String summarises the scheduler state for traces.
func (d *Dynamic) String() string {
	return fmt.Sprintf("Dynamic{u=%.4g γ=%.4g γmax=%.4g overloaded=%t}",
		d.nominalU, d.gamma, d.gammaMax, d.overloaded)
}
