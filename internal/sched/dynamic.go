package sched

import (
	"fmt"
	"sort"

	"hcperf/internal/simtime"
)

// Dynamic is HCPerf's Dynamic Priority Scheduler (paper §V). Jobs are
// dispatched by the dynamic scheduling priority
//
//	P_i = γ·p_i + d_i            (Eq. 10)
//
// where p_i is the static priority, d_i is the job's latest feasible start
// time (the absolute form of the scheduling deadline D_i − c_i, Eq. 9) and
// γ ≥ 0 balances deadline-driven against priority-driven dispatch: γ = 0
// degenerates to least-slack (EDF-like) scheduling, large γ approaches
// static-priority scheduling.
//
// γ is derived from the Performance Directed Controller's nominal signal
// u(t): Recompute finds the largest γmax for which every queued job remains
// schedulable under the Eq. 11 load constraints, then clamps u into
// [0, γmax] (Eq. 12). When even γ = 0 is infeasible the system is
// overloaded; γ is forced to 0 and the Overloaded flag is raised for the
// external coordinator.
//
// Recompute is the scheduler's hot path — the kernel invokes it on every
// ready-queue change, and each invocation evaluates the Eq. 11 constraint
// set at up to 2+BisectIters candidate γ values. All per-job quantities the
// constraints need (p_i, d_i, c_i, deadline slack) are therefore captured
// once per Recompute into scratch buffers reused across calls, and each
// candidate γ only sorts an index permutation; steady-state Recompute
// allocates nothing.
type Dynamic struct {
	// GammaCap bounds the γ search bracket (constraint 1b, γ^max).
	GammaCap float64
	// BisectIters is the number of bisection refinements when searching
	// γmax; the default (24) resolves γ to GammaCap·2^-24.
	BisectIters int

	nominalU   float64
	gamma      float64
	gammaMax   float64
	overloaded bool

	// Scratch state captured from the ready queue by the last Recompute
	// (or direct feasible probe). Slices are reused across calls.
	jobs   []*Job    // queue snapshot, in arrival order
	prio   []float64 // p_i
	latest []float64 // d_i: latest feasible start, absolute
	exec   []float64 // c_i
	slack  []float64 // deadline_i − now
	keys   []float64 // P_i(γ) for the candidate γ under test
	order  []int     // index permutation sorted by keys
	sorter *keySorter

	// Dispatch-order heap keyed on P_i under the γ in force, rebuilt
	// lazily and only when γ (or the captured queue) changes.
	heap      jobHeap
	heapOrder []*Job
	heapDirty bool
}

// DefaultGammaCap spans enough γ range that γ·Δp can dominate the largest
// deadline spreads (tens of milliseconds across ~23 priority levels).
const DefaultGammaCap = 0.02

// NewDynamic returns a Dynamic scheduler with the given γ cap; cap <= 0
// selects DefaultGammaCap.
func NewDynamic(gammaCap float64) *Dynamic {
	if gammaCap <= 0 {
		gammaCap = DefaultGammaCap
	}
	return &Dynamic{GammaCap: gammaCap, BisectIters: 24}
}

// Name implements Scheduler.
func (d *Dynamic) Name() string { return "HCPerf" }

// SetNominalU installs the Performance Directed Controller output u(t).
// It takes effect at the next Recompute.
func (d *Dynamic) SetNominalU(u float64) { d.nominalU = u }

// NominalU returns the currently installed controller signal.
func (d *Dynamic) NominalU() float64 { return d.nominalU }

// Gamma returns the actual priority-adjustment coefficient in force.
func (d *Dynamic) Gamma() float64 { return d.gamma }

// GammaMax returns the schedulability bound found by the last Recompute.
func (d *Dynamic) GammaMax() float64 { return d.gammaMax }

// Overloaded reports whether the last Recompute found no feasible γ
// (Eq. 11 unsatisfiable even at γ = 0). The external coordinator uses this
// to shed load.
func (d *Dynamic) Overloaded() bool { return d.overloaded }

// capture snapshots the per-job constraint inputs into the scratch buffers.
func (d *Dynamic) capture(now simtime.Time, ready []*Job) {
	n := len(ready)
	if cap(d.prio) < n {
		d.jobs = make([]*Job, n)
		d.prio = make([]float64, n)
		d.latest = make([]float64, n)
		d.exec = make([]float64, n)
		d.slack = make([]float64, n)
		d.keys = make([]float64, n)
		d.order = make([]int, n)
	}
	d.jobs = d.jobs[:n]
	d.prio = d.prio[:n]
	d.latest = d.latest[:n]
	d.exec = d.exec[:n]
	d.slack = d.slack[:n]
	d.keys = d.keys[:n]
	d.order = d.order[:n]
	for i, j := range ready {
		d.jobs[i] = j
		d.prio[i] = float64(j.Task.Priority)
		d.latest[i] = float64(j.LatestStart())
		d.exec[i] = float64(j.EstExec)
		d.slack[i] = float64(j.AbsDeadline - now)
	}
	d.heapDirty = true
}

// Recompute re-derives γmax from the current ready queue and processor
// state, then maps the nominal u into γ per Eq. 12. Call it when the ready
// queue changes materially or when the controller publishes a new u.
//
// Feasibility is not perfectly monotone in γ (the constraint set depends on
// the induced ordering), but it is monotone for the workloads in the paper's
// regime — tight deadlines favour small γ — so a bisection over [0,
// GammaCap] finds γmax to within GammaCap·2^-BisectIters.
func (d *Dynamic) Recompute(now simtime.Time, ready []*Job, state *ProcState) {
	d.capture(now, ready)
	np := float64(state.NumProcs)
	base := 0.0
	if np > 0 {
		base = float64(state.TotalRemaining()) / np
	}
	switch {
	case len(ready) == 0:
		// Empty queue: every γ is trivially feasible.
		d.gammaMax = d.GammaCap
		d.overloaded = false
	case !d.check(0, np, base):
		d.gammaMax = 0
		d.overloaded = true
	case d.check(d.GammaCap, np, base):
		d.gammaMax = d.GammaCap
		d.overloaded = false
	default:
		lo, hi := 0.0, d.GammaCap
		iters := d.BisectIters
		if iters <= 0 {
			iters = 24
		}
		for i := 0; i < iters; i++ {
			mid := (lo + hi) / 2
			if d.check(mid, np, base) {
				lo = mid
			} else {
				hi = mid
			}
		}
		d.gammaMax = lo
		d.overloaded = false
	}
	d.gamma = clampGamma(d.nominalU, d.gammaMax)
	d.heapDirty = true
}

// clampGamma maps the nominal u to the actual γ per Eq. 12.
func clampGamma(u, gammaMax float64) float64 {
	switch {
	case u < 0:
		return 0
	case u > gammaMax:
		return gammaMax
	default:
		return u
	}
}

// feasible checks the Eq. 11 constraint set for a candidate γ against an
// arbitrary queue snapshot; it re-captures the scratch state, so tests and
// external probes can call it directly. Recompute captures once and probes
// many γ values via check.
func (d *Dynamic) feasible(gamma float64, now simtime.Time, ready []*Job, state *ProcState) bool {
	np := float64(state.NumProcs)
	if np <= 0 {
		return false
	}
	d.capture(now, ready)
	return d.check(gamma, np, float64(state.TotalRemaining())/np)
}

// check evaluates the Eq. 11 constraint set for a candidate γ over the
// captured queue: with jobs served in P_i(γ) order on n_p processors, every
// job k must satisfy
//
//	c_k + ΣT_p/n_p + Σ_{P_i<P_k} c_i/n_p  <  deadline_k − now.
//
// The sort permutes an index scratch slice (stable, so ties keep arrival
// order exactly as a stable sort of the queue itself would); no per-call
// allocation.
func (d *Dynamic) check(gamma, np, base float64) bool {
	if np <= 0 {
		return false
	}
	keys, order := d.keys, d.order
	for i := range order {
		order[i] = i
		keys[i] = gamma*d.prio[i] + d.latest[i]
	}
	if d.sorter == nil {
		d.sorter = &keySorter{}
	}
	d.sorter.keys, d.sorter.order = keys, order
	// sort.Stable on a concrete sort.Interface: stable, like the previous
	// sort.SliceStable of the queue copy (so ties keep arrival order), but
	// without the closure and interface-conversion allocations per call.
	sort.Stable(d.sorter)
	cum := 0.0
	for _, i := range order {
		c := d.exec[i]
		need := c + base + cum/np
		if need >= d.slack[i] {
			return false
		}
		cum += c
	}
	return true
}

// keySorter stably sorts an index permutation by its key values. A concrete
// sort.Interface (instead of sort.SliceStable's closure) keeps the per-call
// allocation count at zero.
type keySorter struct {
	keys  []float64
	order []int
}

func (s *keySorter) Len() int           { return len(s.order) }
func (s *keySorter) Less(a, b int) bool { return s.keys[s.order[a]] < s.keys[s.order[b]] }
func (s *keySorter) Swap(a, b int)      { s.order[a], s.order[b] = s.order[b], s.order[a] }

// priorityOf evaluates Eq. 10 for one job. Smaller is dispatched first.
func (d *Dynamic) priorityOf(j *Job, gamma float64) float64 {
	return gamma*float64(j.Task.Priority) + float64(j.LatestStart())
}

// Select implements Scheduler: the queued job with the smallest dynamic
// priority P_i under the γ currently in force. Select is a pure function of
// its inputs (the Scheduler contract), so it scans rather than consuming
// the dispatch heap; use DispatchOrder for the full ranking.
func (d *Dynamic) Select(_ simtime.Time, ready []*Job, _ int, _ *ProcState) int {
	return pickBest(ready, nil, func(j *Job) float64 { return d.priorityOf(j, d.gamma) })
}

// DispatchOrder returns the ready queue captured by the last Recompute in
// dispatch order under the γ in force: ascending P_i = γ·p_i + d_i with
// Select's deterministic tie-breaks (earlier release, then lower task ID,
// then arrival order). The ranking comes from a binary heap keyed on P_i
// that is rebuilt lazily — only after γ or the queue changed — and reuses
// its storage, so steady-state calls allocate nothing.
//
// The returned slice is owned by the scheduler and overwritten by the next
// rebuild; copy it if it must outlive the next Recompute. Diagnostic
// consumers (traces, tests, the serve layer) use it to see the whole
// queue's ranking rather than just Select's single winner.
func (d *Dynamic) DispatchOrder() []*Job {
	if d.heapDirty {
		d.heapOrder = d.heap.rank(d.jobs, d.keysInForce, d.heapOrder)
		d.heapDirty = false
	}
	return d.heapOrder
}

// keysInForce fills keys[i] with P_i under the γ currently in force for the
// captured queue snapshot.
func (d *Dynamic) keysInForce(keys []float64) {
	for i := range d.jobs {
		keys[i] = d.gamma*d.prio[i] + d.latest[i]
	}
}

// String summarises the scheduler state for traces.
func (d *Dynamic) String() string {
	return fmt.Sprintf("Dynamic{u=%.4g γ=%.4g γmax=%.4g overloaded=%t}",
		d.nominalU, d.gamma, d.gammaMax, d.overloaded)
}
