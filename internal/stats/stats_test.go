package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "single", give: []float64{5}, want: 5},
		{name: "pair", give: []float64{2, 4}, want: 3},
		{name: "negatives", give: []float64{-1, 1}, want: 0},
		{name: "mixed", give: []float64{1, 2, 3, 4}, want: 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want) {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestRMS(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "single", give: []float64{3}, want: 3},
		{name: "sign invariant", give: []float64{-3}, want: 3},
		{name: "pythagorean", give: []float64{3, 4}, want: math.Sqrt(12.5)},
		{name: "zeros", give: []float64{0, 0, 0}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := RMS(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want) {
				t.Errorf("RMS(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
	if _, err := RMS(nil); err != ErrEmpty {
		t.Errorf("RMS(nil) err = %v, want ErrEmpty", err)
	}
}

func TestStdDev(t *testing.T) {
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Errorf("StdDev(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 5 {
		t.Errorf("Max = %v, %v; want 5, nil", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Error("Min(nil) should fail")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Error("Max(nil) should fail")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 10},
		{p: 100, want: 40},
		{p: 50, want: 25},
		{p: 25, want: 17.5},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) succeeded, want error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) succeeded, want error")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil) should return ErrEmpty")
	}
	one, err := Percentile([]float64{7}, 99)
	if err != nil || one != 7 {
		t.Errorf("Percentile single = %v, %v", one, err)
	}
	// Percentile must not mutate input.
	unsorted := []float64{3, 1, 2}
	if _, err := Percentile(unsorted, 50); err != nil {
		t.Fatal(err)
	}
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Errorf("Percentile mutated input: %v", unsorted)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 3.75, 0, 9, -4.25}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	wantMean, _ := Mean(xs)
	wantRMS, _ := RMS(xs)
	wantSD, _ := StdDev(xs)
	wantMin, _ := Min(xs)
	wantMax, _ := Max(xs)
	if a.N() != len(xs) {
		t.Errorf("N = %d, want %d", a.N(), len(xs))
	}
	if !almostEqual(a.Mean(), wantMean) {
		t.Errorf("Mean = %v, want %v", a.Mean(), wantMean)
	}
	if !almostEqual(a.RMS(), wantRMS) {
		t.Errorf("RMS = %v, want %v", a.RMS(), wantRMS)
	}
	if !almostEqual(a.StdDev(), wantSD) {
		t.Errorf("StdDev = %v, want %v", a.StdDev(), wantSD)
	}
	if a.Min() != wantMin || a.Max() != wantMax {
		t.Errorf("Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), wantMin, wantMax)
	}
}

func TestAccumulatorEmptyAndReset(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.RMS() != 0 || a.StdDev() != 0 || a.N() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	a.Add(5)
	a.Reset()
	if a.N() != 0 || a.Mean() != 0 {
		t.Error("Reset did not clear accumulator")
	}
}

func TestWindow(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cap() != 3 {
		t.Errorf("Cap = %d, want 3", w.Cap())
	}
	w.Push(1)
	w.Push(2)
	if w.Len() != 2 {
		t.Errorf("Len = %d, want 2", w.Len())
	}
	got := w.Samples()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Samples = %v, want [1 2]", got)
	}
	w.Push(3)
	w.Push(4) // evicts 1
	got = w.Samples()
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("Samples after wrap = %v, want [2 3 4]", got)
	}
	if !almostEqual(w.Mean(), 3) {
		t.Errorf("windowed Mean = %v, want 3", w.Mean())
	}
	wantRMS := math.Sqrt((4.0 + 9 + 16) / 3)
	if !almostEqual(w.RMS(), wantRMS) {
		t.Errorf("windowed RMS = %v, want %v", w.RMS(), wantRMS)
	}
	w.Reset()
	if w.Len() != 0 || w.RMS() != 0 || w.Mean() != 0 {
		t.Error("Reset did not clear window")
	}
	if _, err := NewWindow(0); err == nil {
		t.Error("NewWindow(0) succeeded, want error")
	}
}

// Property: the accumulator agrees with the batch reductions for arbitrary
// inputs.
func TestQuickAccumulatorAgreesWithBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var a Accumulator
		for i, r := range raw {
			xs[i] = float64(r) / 7
			a.Add(xs[i])
		}
		wantMean, _ := Mean(xs)
		wantRMS, _ := RMS(xs)
		return math.Abs(a.Mean()-wantMean) < 1e-6 && math.Abs(a.RMS()-wantRMS) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RMS >= |Mean| for any non-empty sample set.
func TestQuickRMSDominatesMean(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		rms, _ := RMS(xs)
		mean, _ := Mean(xs)
		return rms >= math.Abs(mean)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
