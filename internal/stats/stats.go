// Package stats provides the small set of statistics used throughout the
// HCPerf evaluation: RMS, means, percentiles and online accumulators for
// time-series metrics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty sample sets.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or an error if xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// RMS returns the root-mean-square of xs, or an error if xs is empty.
// This is the aggregation the paper uses for speed, distance and lateral
// tracking errors (Tables II-VI).
func RMS(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x * x
	}
	return math.Sqrt(sum / float64(len(xs))), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs))), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Accumulator collects samples incrementally without retaining them,
// tracking count, mean (Welford), sum of squares, min and max. The zero
// value is ready to use.
type Accumulator struct {
	n     int
	mean  float64
	m2    float64 // sum of squared deviations from the mean
	sumSq float64 // raw sum of squares, for RMS
	min   float64
	max   float64
}

// Add incorporates one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
	a.sumSq += x * x
}

// N returns the number of samples added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// RMS returns the running root-mean-square (0 for an empty accumulator).
func (a *Accumulator) RMS() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.sumSq / float64(a.n))
}

// StdDev returns the running population standard deviation.
func (a *Accumulator) StdDev() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// Min returns the smallest sample (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 for an empty accumulator).
func (a *Accumulator) Max() float64 { return a.max }

// Reset discards all samples.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Window is a fixed-capacity sliding window of samples supporting windowed
// RMS/mean, used for jerk-based passenger-discomfort and ADE integration.
type Window struct {
	buf  []float64
	head int
	full bool
}

// NewWindow returns a sliding window holding up to n samples. n must be > 0.
func NewWindow(n int) (*Window, error) {
	if n <= 0 {
		return nil, errors.New("stats: window size must be positive")
	}
	return &Window{buf: make([]float64, n)}, nil
}

// Push adds a sample, evicting the oldest when full.
func (w *Window) Push(x float64) {
	w.buf[w.head] = x
	w.head++
	if w.head == len(w.buf) {
		w.head = 0
		w.full = true
	}
}

// Len returns the number of samples currently held.
func (w *Window) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.head
}

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Samples returns the held samples oldest-first as a fresh slice.
func (w *Window) Samples() []float64 {
	n := w.Len()
	out := make([]float64, 0, n)
	if w.full {
		out = append(out, w.buf[w.head:]...)
	}
	out = append(out, w.buf[:w.head]...)
	return out
}

// RMS returns the RMS of the held samples (0 when empty).
func (w *Window) RMS() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range w.Samples() {
		sum += x * x
	}
	return math.Sqrt(sum / float64(n))
}

// Mean returns the mean of the held samples (0 when empty).
func (w *Window) Mean() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range w.Samples() {
		sum += x
	}
	return sum / float64(n)
}

// Reset discards all samples but keeps the capacity.
func (w *Window) Reset() {
	w.head = 0
	w.full = false
}
