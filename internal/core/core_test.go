package core

import (
	"testing"

	"hcperf/internal/mfc"

	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/rate"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

const ms = simtime.Millisecond

type harness struct {
	q    *simtime.EventQueue
	g    *dag.Graph
	dyn  *sched.Dynamic
	eng  *engine.Engine
	coor *Coordinator
}

// newHarness builds a motivation-graph engine coordinated by HCPerf with a
// caller-supplied tracking-error source.
func newHarness(t *testing.T, cfg Config, trkErr TrackingErrorFunc) *harness {
	t.Helper()
	q := simtime.NewEventQueue()
	g, err := dag.MotivationGraph()
	if err != nil {
		t.Fatal(err)
	}
	dyn := sched.NewDynamic(0.02)
	eng, err := engine.New(engine.Config{
		Graph:     g,
		Scheduler: dyn,
		NumProcs:  2,
		Queue:     q,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	cfg.Queue = q
	cfg.Dynamic = dyn
	cfg.TrackingError = trkErr
	coor, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := coor.Start(); err != nil {
		t.Fatal(err)
	}
	return &harness{q: q, g: g, dyn: dyn, eng: eng, coor: coor}
}

func constErr(v float64) TrackingErrorFunc {
	return func(simtime.Time) float64 { return v }
}

func TestConfigValidation(t *testing.T) {
	q := simtime.NewEventQueue()
	g, err := dag.MotivationGraph()
	if err != nil {
		t.Fatal(err)
	}
	dyn := sched.NewDynamic(0.02)
	eng, err := engine.New(engine.Config{Graph: g, Scheduler: dyn, NumProcs: 2, Queue: q, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	valid := Config{Engine: eng, Queue: q, Dynamic: dyn, TrackingError: constErr(0)}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil engine", mutate: func(c *Config) { c.Engine = nil }},
		{name: "nil queue", mutate: func(c *Config) { c.Queue = nil }},
		{name: "nil dynamic", mutate: func(c *Config) { c.Dynamic = nil }},
		{name: "nil tracking error", mutate: func(c *Config) { c.TrackingError = nil }},
		{name: "foreign dynamic", mutate: func(c *Config) { c.Dynamic = sched.NewDynamic(0.02) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := New(valid); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSustainedErrorRaisesU(t *testing.T) {
	var lastU, lastGamma float64
	steps := 0
	h := newHarness(t, Config{
		OnControlPeriod: func(_ simtime.Time, _, u, gamma float64) {
			lastU, lastGamma = u, gamma
			steps++
		},
	}, constErr(2.0))
	if err := h.q.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("internal coordinator never stepped")
	}
	if lastU <= 0 {
		t.Errorf("u = %v after sustained positive error, want > 0", lastU)
	}
	if lastGamma < 0 || lastGamma > h.dyn.GammaCap {
		t.Errorf("γ = %v outside [0, cap]", lastGamma)
	}
	if h.coor.NominalU() != lastU {
		t.Errorf("NominalU() = %v, callback saw %v", h.coor.NominalU(), lastU)
	}
}

func TestZeroErrorKeepsUZero(t *testing.T) {
	h := newHarness(t, Config{}, constErr(0))
	if err := h.q.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if u := h.coor.NominalU(); u != 0 {
		t.Errorf("u = %v with zero tracking error, want 0", u)
	}
}

func TestExternalRaisesRatesWhenIdle(t *testing.T) {
	adaptSteps := 0
	h := newHarness(t, Config{
		OnAdaptPeriod: func(_ simtime.Time, miss float64, _ []rate.Proposal) {
			adaptSteps++
			if miss != 0 {
				t.Errorf("unexpected misses (ratio %v) on light load", miss)
			}
		},
	}, constErr(0))
	src := h.g.TaskByName("image_preproc")
	initial := h.eng.SourceRate(src.ID)
	if err := h.q.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if adaptSteps == 0 {
		t.Fatal("external coordinator never stepped")
	}
	if got := h.eng.SourceRate(src.ID); got <= initial {
		t.Errorf("source rate %v did not rise from %v on a no-miss system", got, initial)
	}
}

func TestExternalShedsLoadUnderOverload(t *testing.T) {
	h := newHarness(t, Config{}, constErr(0))
	// Inflate the fusion execution time brutally mid-run via a profile so
	// the system overloads.
	fusion := h.g.TaskByName("sensor_fusion")
	prof, err := exectime.NewProfile(fusion.Exec, []exectime.Step{{From: 2, To: 1000, Factor: 6}})
	if err != nil {
		t.Fatal(err)
	}
	fusion.Exec = prof
	src := h.g.TaskByName("image_preproc")
	if err := h.q.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	rateBefore := h.eng.SourceRate(src.ID)
	if err := h.q.RunUntil(12); err != nil {
		t.Fatal(err)
	}
	rateAfter := h.eng.SourceRate(src.ID)
	if rateAfter >= rateBefore {
		t.Errorf("source rate %v did not drop from %v under overload", rateAfter, rateBefore)
	}
}

func TestDisableExternalFreezesRates(t *testing.T) {
	h := newHarness(t, Config{DisableExternal: true}, constErr(0))
	src := h.g.TaskByName("image_preproc")
	initial := h.eng.SourceRate(src.ID)
	if err := h.q.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if got := h.eng.SourceRate(src.ID); got != initial {
		t.Errorf("rates moved to %v with external coordinator disabled", got)
	}
}

func TestOverheadRecorded(t *testing.T) {
	h := newHarness(t, Config{}, constErr(1))
	if err := h.q.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	oh := h.coor.Overhead()
	if oh.N() == 0 {
		t.Fatal("no overhead samples recorded")
	}
	// Paper §VII-E: well under 5 ms per coordination step.
	if oh.Mean() > 0.005 {
		t.Errorf("mean coordinator overhead %v s exceeds 5 ms", oh.Mean())
	}
}

func TestStopHaltsCoordination(t *testing.T) {
	steps := 0
	h := newHarness(t, Config{
		OnControlPeriod: func(simtime.Time, float64, float64, float64) { steps++ },
	}, constErr(1))
	if err := h.q.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	h.coor.Stop()
	at := steps
	if err := h.q.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if steps != at {
		t.Errorf("coordinator stepped %d more times after Stop", steps-at)
	}
	if err := h.coor.Start(); err == nil {
		t.Error("second Start accepted")
	}
}

func TestAdapterKpVisible(t *testing.T) {
	h := newHarness(t, Config{}, constErr(0))
	if h.coor.AdapterKp() != rate.DefaultConfig().Kp0 {
		t.Errorf("initial Kp = %v, want Kp0", h.coor.AdapterKp())
	}
	if err := h.q.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	_ = h.coor.Gamma() // must not panic before/after steps
}

func TestControlPeriodDefaultsToTs(t *testing.T) {
	var times []simtime.Time
	h := newHarness(t, Config{
		OnControlPeriod: func(now simtime.Time, _, _, _ float64) { times = append(times, now) },
	}, constErr(0))
	if err := h.q.RunUntil(0.55); err != nil {
		t.Fatal(err)
	}
	if len(times) < 4 {
		t.Fatalf("only %d control periods in 0.55s, want >= 4 at Ts=100ms", len(times))
	}
	if dt := times[1] - times[0]; dt < 99*ms || dt > 101*ms {
		t.Errorf("control period %v, want 100ms", dt)
	}
}

func TestMFCConfigForScale(t *testing.T) {
	cfg := MFCConfigForScale(2, 0.02)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	if cfg.Alpha >= 0 {
		t.Errorf("alpha %v not negative", cfg.Alpha)
	}
	if cfg.UClamp != 0.04 {
		t.Errorf("UClamp = %v, want 2*cap", cfg.UClamp)
	}
	// A ten-times-smaller error scale produces a ten-times-hotter alpha.
	small := MFCConfigForScale(0.2, 0.02)
	if small.Alpha*10 != cfg.Alpha {
		t.Errorf("alpha scaling broken: %v vs %v", small.Alpha, cfg.Alpha)
	}
	// Degenerate inputs fall back to safe defaults.
	if got := MFCConfigForScale(0, 0); got.Validate() != nil {
		t.Errorf("fallback config invalid: %v", got.Validate())
	}
}

func TestOnAdaptPeriodObserves(t *testing.T) {
	var observedMiss []float64
	var proposalsSeen int
	h := newHarness(t, Config{
		OnAdaptPeriod: func(_ simtime.Time, miss float64, props []rate.Proposal) {
			observedMiss = append(observedMiss, miss)
			proposalsSeen += len(props)
		},
	}, constErr(0))
	if err := h.q.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if len(observedMiss) < 4 {
		t.Fatalf("adapt callback fired %d times in 5s at 1 Hz, want >= 4", len(observedMiss))
	}
	if proposalsSeen == 0 {
		t.Error("no rate proposals observed")
	}
	for _, m := range observedMiss {
		if m < 0 || m > 1 {
			t.Errorf("observed miss ratio %v outside [0,1]", m)
		}
	}
}

func TestCustomPeriods(t *testing.T) {
	var controlTimes, adaptTimes []simtime.Time
	h := newHarness(t, Config{
		ControlPeriod: 50 * ms,
		AdaptPeriod:   500 * ms,
		OnControlPeriod: func(now simtime.Time, _, _, _ float64) {
			controlTimes = append(controlTimes, now)
		},
		OnAdaptPeriod: func(now simtime.Time, _ float64, _ []rate.Proposal) {
			adaptTimes = append(adaptTimes, now)
		},
	}, constErr(0))
	if err := h.q.RunUntil(1.01); err != nil {
		t.Fatal(err)
	}
	if len(controlTimes) < 19 {
		t.Errorf("%d control periods in ~1s at 50ms, want >= 19", len(controlTimes))
	}
	if len(adaptTimes) != 2 {
		t.Errorf("%d adapt periods in ~1s at 500ms, want 2", len(adaptTimes))
	}
}

func TestCustomRateConfigApplied(t *testing.T) {
	cfg := rate.DefaultConfig()
	cfg.Kp0 = 3.21
	h := newHarness(t, Config{Rate: cfg}, constErr(0))
	if got := h.coor.AdapterKp(); got != 3.21 {
		t.Errorf("AdapterKp = %v, want the custom 3.21", got)
	}
}

func TestInvalidMFCConfigRejected(t *testing.T) {
	q := simtime.NewEventQueue()
	g, err := dag.MotivationGraph()
	if err != nil {
		t.Fatal(err)
	}
	dyn := sched.NewDynamic(0.02)
	eng, err := engine.New(engine.Config{Graph: g, Scheduler: dyn, NumProcs: 2, Queue: q, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := mfc.DefaultConfig()
	bad.Alpha = 1 // must be negative
	if _, err := New(Config{Engine: eng, Queue: q, Dynamic: dyn, TrackingError: constErr(0), MFC: bad}); err == nil {
		t.Error("invalid MFC config accepted")
	}
	badRate := rate.DefaultConfig()
	badRate.Kp0 = -1
	if _, err := New(Config{Engine: eng, Queue: q, Dynamic: dyn, TrackingError: constErr(0), Rate: badRate}); err == nil {
		t.Error("invalid rate config accepted")
	}
}
