// Package core implements HCPerf itself: the performance-directed
// hierarchical coordination framework (paper Fig. 6). It wires the two
// coordinators around the task engine:
//
//   - The internal coordinator runs once per control period: it samples the
//     vehicle's driving-performance tracking error E(t), feeds it through
//     the Performance Directed Controller (package mfc) to obtain the
//     nominal priority-adjustment signal u(t), and installs u on the
//     Dynamic Priority Scheduler (package sched), which clamps it into the
//     schedulable range [0, γmax] and dispatches by P_i = γ·p_i + d_i.
//
//   - The external coordinator runs once per adaptation period: it reads
//     the windowed end-to-end deadline-miss ratio from the engine, runs the
//     Task Rate Adapter (package rate), and applies the resulting source-
//     task rates. It also watches the observed execution-time regime and
//     resets the adapter gain when the scene changes abruptly.
package core

import (
	"errors"
	"fmt"
	"time"

	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/mfc"
	"hcperf/internal/rate"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/stats"
)

// TrackingErrorFunc reports the vehicle's driving-performance tracking
// error E(t) at virtual time now — |R(t) − P(t)| in the problem statement
// (Eq. 1a), e.g. the speed difference to the lead car for car following or
// the lateral offset for lane keeping. The sign convention is positive =
// performance degrading; the controller only needs consistency.
type TrackingErrorFunc func(now simtime.Time) float64

// Config configures a Coordinator.
type Config struct {
	// Engine is the task engine to coordinate.
	Engine *engine.Engine
	// Queue is the simulation event queue shared with the engine.
	Queue *simtime.EventQueue
	// Dynamic is the HCPerf scheduler instance the engine was built
	// with. It must be the same object passed to the engine.
	Dynamic *sched.Dynamic
	// TrackingError samples the driving performance each control period.
	TrackingError TrackingErrorFunc
	// MFC parameterises the Performance Directed Controller.
	// Zero value selects mfc.DefaultConfig.
	MFC mfc.Config
	// Rate parameterises the Task Rate Adapter. Zero value selects
	// rate.DefaultConfig.
	Rate rate.Config
	// ControlPeriod is the internal coordinator's period; it defaults to
	// the MFC sampling period Ts.
	ControlPeriod simtime.Duration
	// AdaptPeriod is the external coordinator's period (default 1 s).
	AdaptPeriod simtime.Duration
	// DisableExternal turns off the Task Rate Adapter (the Fig. 18
	// ablation: internal coordinator only).
	DisableExternal bool
	// OnControlPeriod, when set, observes every internal-coordinator
	// step (diagnostics/tracing).
	OnControlPeriod func(now simtime.Time, e, u, gamma float64)
	// OnAdaptPeriod, when set, observes every external-coordinator step.
	OnAdaptPeriod func(now simtime.Time, missRatio float64, proposals []rate.Proposal)
}

// MFCConfigForScale returns a Performance Directed Controller
// configuration tuned for a driving application whose emergency-scale
// tracking error is errScale (in the application's own units: m/s for car
// following, metres of lateral offset for lane keeping): α is sized so an
// emergency-scale error traverses the scheduler's full γ range within about
// ten control periods, with anti-windup at twice the γ cap so u keeps
// responding to error changes even when the error has an unreachable floor.
func MFCConfigForScale(errScale, gammaCap float64) mfc.Config {
	cfg := mfc.DefaultConfig()
	if errScale <= 0 {
		errScale = 1
	}
	if gammaCap <= 0 {
		gammaCap = sched.DefaultGammaCap
	}
	cfg.Alpha = -errScale * 10 / gammaCap
	cfg.UClamp = 2 * gammaCap
	return cfg
}

// Coordinator is a running HCPerf instance.
type Coordinator struct {
	eng     *engine.Engine
	q       *simtime.EventQueue
	dyn     *sched.Dynamic
	pdc     *mfc.Controller
	adapter *rate.Adapter
	trkErr  TrackingErrorFunc

	controlPeriod simtime.Duration
	adaptPeriod   simtime.Duration
	external      bool
	onControl     func(now simtime.Time, e, u, gamma float64)
	onAdapt       func(now simtime.Time, missRatio float64, proposals []rate.Proposal)

	sources  []*dag.Task
	started  bool
	tickers  []*simtime.Ticker
	overhead stats.Accumulator // wall-clock seconds per coordinator step
}

// New validates cfg and builds a coordinator. Call Start to begin
// coordinating; the engine must be started separately.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Engine == nil {
		return nil, errors.New("core: nil engine")
	}
	if cfg.Queue == nil {
		return nil, errors.New("core: nil event queue")
	}
	if cfg.Dynamic == nil {
		return nil, errors.New("core: nil dynamic scheduler")
	}
	if cfg.Engine.Scheduler() != sched.Scheduler(cfg.Dynamic) {
		return nil, errors.New("core: engine is not driven by the given dynamic scheduler")
	}
	if cfg.TrackingError == nil {
		return nil, errors.New("core: nil tracking-error source")
	}
	mcfg := cfg.MFC
	if mcfg == (mfc.Config{}) {
		mcfg = MFCConfigForScale(DefaultErrScale, cfg.Dynamic.GammaCap)
	}
	pdc, err := mfc.New(mcfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rcfg := cfg.Rate
	if rcfg == (rate.Config{}) {
		rcfg = rate.DefaultConfig()
	}
	adapter, err := rate.New(rcfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	controlPeriod := cfg.ControlPeriod
	if controlPeriod <= 0 {
		controlPeriod = mcfg.Ts
	}
	adaptPeriod := cfg.AdaptPeriod
	if adaptPeriod <= 0 {
		adaptPeriod = simtime.Second
	}
	return &Coordinator{
		eng:           cfg.Engine,
		q:             cfg.Queue,
		dyn:           cfg.Dynamic,
		pdc:           pdc,
		adapter:       adapter,
		trkErr:        cfg.TrackingError,
		controlPeriod: controlPeriod,
		adaptPeriod:   adaptPeriod,
		external:      !cfg.DisableExternal,
		onControl:     cfg.OnControlPeriod,
		onAdapt:       cfg.OnAdaptPeriod,
		sources:       cfg.Engine.Graph().Sources(),
	}, nil
}

// Start schedules both coordination loops on the event queue. The first
// control period fires one period from now, the first adaptation period
// one adaptation period from now.
func (c *Coordinator) Start() error {
	if c.started {
		return errors.New("core: already started")
	}
	c.started = true
	now := c.q.Now()
	tk, err := c.q.NewTicker(now+c.controlPeriod, c.controlPeriod, c.controlStep)
	if err != nil {
		return fmt.Errorf("core: start internal coordinator: %w", err)
	}
	c.tickers = append(c.tickers, tk)
	if c.external {
		tk, err = c.q.NewTicker(now+c.adaptPeriod, c.adaptPeriod, c.adaptStep)
		if err != nil {
			return fmt.Errorf("core: start external coordinator: %w", err)
		}
		c.tickers = append(c.tickers, tk)
	}
	return nil
}

// Stop cancels both coordination loops.
func (c *Coordinator) Stop() {
	for _, tk := range c.tickers {
		tk.Stop()
	}
	c.tickers = nil
}

// Gamma returns the scheduler's current priority-adjustment coefficient.
func (c *Coordinator) Gamma() float64 { return c.dyn.Gamma() }

// NominalU returns the Performance Directed Controller's latest output.
func (c *Coordinator) NominalU() float64 { return c.pdc.LastU() }

// AdapterKp returns the Task Rate Adapter's current gain.
func (c *Coordinator) AdapterKp() float64 { return c.adapter.Kp() }

// Overhead returns wall-clock statistics (seconds per step) of the
// coordinator's own computation, covering both coordinators — the paper's
// §VII-E overhead metric.
func (c *Coordinator) Overhead() stats.Accumulator { return c.overhead }

// controlStep is one internal-coordinator period (paper Fig. 6 left loop).
func (c *Coordinator) controlStep(now simtime.Time) {
	wall := time.Now()
	e := c.trkErr(now)
	u, err := c.pdc.Step(now, e)
	if err != nil {
		// Time is monotone on a single event queue; a failure here
		// means the harness is broken, not a runtime condition.
		panic(fmt.Sprintf("core: controller step: %v", err))
	}
	c.dyn.SetNominalU(u)
	// Re-derive γmax and γ against the live queue immediately rather
	// than waiting for the next queue change.
	c.eng.RefreshScheduler()
	c.overhead.Add(time.Since(wall).Seconds())
	if c.onControl != nil {
		c.onControl(now, e, u, c.dyn.Gamma())
	}
}

// adaptStep is one external-coordinator period (paper Fig. 6 right loop).
func (c *Coordinator) adaptStep(now simtime.Time) {
	wall := time.Now()
	win := c.eng.WindowStats()
	c.eng.ResetWindow()
	// The adapter regulates the deadline miss ratio of the system; the
	// binding constraint is whichever is worse of the end-to-end
	// (control-job) ratio and the overall job ratio, so both queue
	// overload and pipeline starvation register.
	miss := win.MissRatio()
	if e2e := win.E2EMissRatio(); e2e > miss {
		miss = e2e
	}

	// Regime tracking: the largest observed-vs-nominal execution-time
	// ratio across tasks. A doubling of any task's execution time (the
	// paper's complex-scene event) trips the adapter's gain reset.
	c.adapter.NoteExecTime(simtime.Duration(c.execRegimeSignal()))

	current := make(map[*dag.Task]float64, len(c.sources))
	for _, s := range c.sources {
		current[s] = c.eng.SourceRate(s.ID)
	}
	proposals, err := c.adapter.Step(miss, current)
	if err != nil {
		panic(fmt.Sprintf("core: rate adapter: %v", err))
	}
	for _, p := range proposals {
		if p.NewRate == p.OldRate {
			continue
		}
		if _, err := c.eng.SetSourceRate(p.Task.ID, p.NewRate); err != nil {
			panic(fmt.Sprintf("core: apply rate: %v", err))
		}
	}
	c.overhead.Add(time.Since(wall).Seconds())
	if c.onAdapt != nil {
		c.onAdapt(now, miss, proposals)
	}
}

// execRegimeSignal returns max over tasks of observed/nominal execution
// time — a dimensionless load-regime indicator (1 = nominal).
func (c *Coordinator) execRegimeSignal() float64 {
	maxRatio := 1.0
	for _, t := range c.eng.Graph().Tasks() {
		nom := float64(t.Exec.Nominal())
		if nom <= 0 {
			continue
		}
		if r := float64(c.eng.ObservedExec(t.ID)) / nom; r > maxRatio {
			maxRatio = r
		}
	}
	return maxRatio
}
