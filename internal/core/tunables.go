package core

import (
	"fmt"
	"math"

	"hcperf/internal/dag"
	"hcperf/internal/mfc"
	"hcperf/internal/rate"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// DefaultErrScale is the emergency-scale tracking error the coordinator
// assumes when a scenario does not supply its own (m/s for car following):
// MFCConfigForScale(DefaultErrScale, γmax) is the MFC configuration a
// zero-valued Config resolves to.
const DefaultErrScale = 2

// Tunables is the coordinator parameter set the paper hand-picks and the
// search subsystem (internal/search) explores: one struct owns the knobs
// that used to be scattered across scenario constructors and package
// defaults, so the search space and the scenarios read the same values.
//
// The zero value of any field means "paper default" (see DefaultTunables);
// Resolved fills the gaps. All six knobs only take effect under the HCPerf
// schemes — baselines have no coordinator to tune, though RMinScale and
// RMaxScale still reshape the graph's allowable rate bands.
type Tunables struct {
	// GammaCap is γmax, the Dynamic scheduler's priority-adjustment cap
	// (sched.DefaultGammaCap when zero).
	GammaCap float64
	// MFCWindow is T_ADE, the Performance Directed Controller's
	// derivative-estimation window (500 ms when zero). It must cover at
	// least one MFC sampling period (100 ms).
	MFCWindow simtime.Duration
	// RateKp0 is the Task Rate Adapter's initial proportional gain
	// (rate.DefaultConfig().Kp0 when zero).
	RateKp0 float64
	// RateDecay is the adapter's per-stable-period multiplicative gain
	// decay, in (0,1) (rate.DefaultConfig().Decay when zero).
	RateDecay float64
	// RMinScale and RMaxScale multiply every adjustable source task's
	// MinRate/MaxRate band (r_min, r_max in the paper's Eq. 13 clamp),
	// narrowing or widening the range the rate adapter may move in.
	// 1 (or zero = default) leaves the graph untouched; a task's current
	// rate is clamped into the scaled band.
	RMinScale float64
	RMaxScale float64
}

// DefaultTunables returns the paper's hand-picked coordinator settings —
// the values every scenario ran with before tunables became explicit. The
// defaults are read from their owning packages so they cannot drift.
func DefaultTunables() Tunables {
	rc := rate.DefaultConfig()
	return Tunables{
		GammaCap:  sched.DefaultGammaCap,
		MFCWindow: mfc.DefaultConfig().ADEWindow,
		RateKp0:   rc.Kp0,
		RateDecay: rc.Decay,
		RMinScale: 1,
		RMaxScale: 1,
	}
}

// Resolved fills zero fields with the paper defaults and validates the
// result. A fully zero Tunables resolves to DefaultTunables exactly, so
// existing configurations are unchanged byte-for-byte.
func (t Tunables) Resolved() (Tunables, error) {
	d := DefaultTunables()
	if t.GammaCap == 0 {
		t.GammaCap = d.GammaCap
	}
	if t.MFCWindow == 0 {
		t.MFCWindow = d.MFCWindow
	}
	if t.RateKp0 == 0 {
		t.RateKp0 = d.RateKp0
	}
	if t.RateDecay == 0 {
		t.RateDecay = d.RateDecay
	}
	if t.RMinScale == 0 {
		t.RMinScale = d.RMinScale
	}
	if t.RMaxScale == 0 {
		t.RMaxScale = d.RMaxScale
	}
	return t, t.validate()
}

func (t Tunables) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"gamma cap", t.GammaCap},
		{"rate Kp0", t.RateKp0},
		{"r_min scale", t.RMinScale},
		{"r_max scale", t.RMaxScale},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v <= 0 {
			return fmt.Errorf("core: %s must be a positive finite value, got %v", f.name, f.v)
		}
	}
	if t.MFCWindow <= 0 {
		return fmt.Errorf("core: MFC window must be positive, got %v", t.MFCWindow)
	}
	if math.IsNaN(t.RateDecay) || t.RateDecay <= 0 || t.RateDecay >= 1 {
		return fmt.Errorf("core: rate decay %v outside (0,1)", t.RateDecay)
	}
	return nil
}

// MFCConfig builds the Performance Directed Controller configuration for a
// driving application whose emergency-scale tracking error is errScale
// (<= 0 selects DefaultErrScale), under this tunable set's γ cap and ADE
// window. Callers that override the scheduler's γ cap independently should
// pass the effective cap via a Tunables copy with GammaCap set.
func (t Tunables) MFCConfig(errScale float64) mfc.Config {
	if errScale <= 0 {
		errScale = DefaultErrScale
	}
	cfg := MFCConfigForScale(errScale, t.GammaCap)
	cfg.ADEWindow = t.MFCWindow
	return cfg
}

// RateConfig overlays the tunable adapter gains on the default rate-adapter
// profile. Scenarios with a bespoke profile (lane keeping) keep it — the
// overlay only applies where the profile is the paper default.
func (t Tunables) RateConfig() rate.Config {
	cfg := rate.DefaultConfig()
	cfg.Kp0 = t.RateKp0
	cfg.Decay = t.RateDecay
	return cfg
}

// ApplyRateBounds rescales every adjustable source task's [MinRate,
// MaxRate] band in place by RMinScale/RMaxScale and clamps the task's
// current rate into the scaled band. Fixed-rate sources (MaxRate == 0) are
// untouched; both scales at 1 is a guaranteed no-op. The graph is
// re-validated after the rewrite.
func (t Tunables) ApplyRateBounds(g *dag.Graph) error {
	if t.RMinScale == 1 && t.RMaxScale == 1 {
		return nil
	}
	for _, task := range g.Sources() {
		if task.MaxRate <= 0 {
			continue
		}
		lo, hi := task.MinRate*t.RMinScale, task.MaxRate*t.RMaxScale
		if lo > hi {
			return fmt.Errorf("core: scaled rate band [%v,%v] inverted for task %q (scales %v/%v)",
				lo, hi, task.Name, t.RMinScale, t.RMaxScale)
		}
		task.MinRate, task.MaxRate = lo, hi
		if task.Rate < lo {
			task.Rate = lo
		}
		if task.Rate > hi {
			task.Rate = hi
		}
	}
	return g.Validate()
}
