// Package rt is the wall-clock counterpart of the discrete-event engine: a
// goroutine-based real-time executor that runs the same task graphs under
// the same scheduling policies on actual time, standing in for the paper's
// 1:10-scale hardware testbed (DESIGN.md §5 substitution).
//
// Semantics mirror package engine: source tasks fire on wall-clock tickers
// and deliver off-CPU after their capture latency; derived tasks are
// data-triggered by their primary predecessor; jobs respect per-task
// relative deadlines, end-to-end budgets and the input-age validity bound.
// Execution is emulated either by sleeping for the sampled duration
// (default; timing-accurate and cheap) or by busy work running real
// Hungarian matching over the scene's obstacles (Busy mode; generates
// genuinely scene-dependent CPU load).
//
// The executor coordinates with the same mfc and rate controllers as the
// simulation when a tracking-error source is configured, so HCPerf's full
// hierarchy runs on wall clock too.
package rt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/hungarian"
	"hcperf/internal/mfc"
	"hcperf/internal/rate"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// ControlCommand mirrors engine.ControlCommand for wall-clock runs.
type ControlCommand struct {
	Task       *dag.Task
	Cycle      uint64
	Release    simtime.Time
	Completed  simtime.Time
	SourceTime simtime.Time
}

// ResponseTime returns release-to-completion latency.
func (c ControlCommand) ResponseTime() simtime.Duration { return c.Completed - c.Release }

// EndToEndLatency returns sensing-to-actuation latency.
func (c ControlCommand) EndToEndLatency() simtime.Duration { return c.Completed - c.SourceTime }

// Stats aggregates executor-wide outcomes.
type Stats struct {
	Released        uint64
	Completed       uint64
	Missed          uint64
	Expired         uint64
	ControlCommands uint64
	E2EDecided      uint64
	E2EMissed       uint64
}

// MissRatio returns misses over decided jobs.
func (s Stats) MissRatio() float64 {
	decided := s.Completed + s.Missed
	if decided == 0 {
		return 0
	}
	return float64(s.Missed) / float64(decided)
}

// E2EMissRatio returns the control-job miss ratio.
func (s Stats) E2EMissRatio() float64 {
	if s.E2EDecided == 0 {
		return 0
	}
	return float64(s.E2EMissed) / float64(s.E2EDecided)
}

// Config configures an Executor.
type Config struct {
	// Graph is the validated task graph to execute.
	Graph *dag.Graph
	// Scheduler is the dispatch policy (pass a *sched.Dynamic to enable
	// HCPerf coordination together with TrackingError).
	Scheduler sched.Scheduler
	// NumProcs is the worker count (M >= 1).
	NumProcs int
	// Seed seeds execution-time sampling.
	Seed int64
	// Scene supplies the runtime scene by wall-clock offset; nil means
	// exectime.NominalScene.
	Scene func(elapsed simtime.Time) exectime.Scene
	// Busy selects busy-work execution (real Hungarian matching) instead
	// of sleeping.
	Busy bool
	// MaxDataAge bounds input ages as in the engine (0 disables).
	MaxDataAge simtime.Duration
	// OnControl observes emitted control commands (called off the worker
	// goroutines' critical section but potentially concurrently).
	OnControl func(cmd ControlCommand)
	// TrackingError, when set together with a *sched.Dynamic scheduler,
	// enables the HCPerf coordinators on wall clock.
	TrackingError func(elapsed simtime.Time) float64
	// DisableExternal turns off the Task Rate Adapter.
	DisableExternal bool
	// ControlPeriod is the internal-coordinator period (default 100 ms).
	ControlPeriod time.Duration
	// AdaptPeriod is the external-coordinator period (default 1 s).
	AdaptPeriod time.Duration
}

type edgeKey struct{ from, to dag.TaskID }

type edgeState struct {
	fresh      bool
	has        bool
	sourceTime simtime.Time
	producedAt simtime.Time
}

// Executor runs a task graph on wall-clock time.
type Executor struct {
	cfg   Config
	graph *dag.Graph

	mu       sync.Mutex
	cond     *sync.Cond
	ready    []*sched.Job
	edges    map[edgeKey]*edgeState
	observed []simtime.Duration
	cycles   []uint64
	rates    []float64
	running  []simtime.Time // per-worker expected finish (elapsed time)
	budgets  []simtime.Duration
	stats    Stats
	rng      *rand.Rand
	stopped  bool

	start   time.Time
	started bool
	wg      sync.WaitGroup
	stopCh  chan struct{}

	pdc     *mfc.Controller
	adapter *rate.Adapter
	dyn     *sched.Dynamic
}

// New validates cfg and builds an executor.
func New(cfg Config) (*Executor, error) {
	if cfg.Graph == nil {
		return nil, errors.New("rt: nil graph")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("rt: nil scheduler")
	}
	if cfg.NumProcs < 1 {
		return nil, fmt.Errorf("rt: NumProcs %d < 1", cfg.NumProcs)
	}
	if cfg.Scene == nil {
		cfg.Scene = func(simtime.Time) exectime.Scene { return exectime.NominalScene() }
	}
	if cfg.ControlPeriod <= 0 {
		cfg.ControlPeriod = 100 * time.Millisecond
	}
	if cfg.AdaptPeriod <= 0 {
		cfg.AdaptPeriod = time.Second
	}
	n := cfg.Graph.Len()
	e := &Executor{
		cfg:      cfg,
		graph:    cfg.Graph,
		edges:    make(map[edgeKey]*edgeState),
		observed: make([]simtime.Duration, n),
		cycles:   make([]uint64, n),
		rates:    make([]float64, n),
		running:  make([]simtime.Time, cfg.NumProcs),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stopCh:   make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	for _, t := range cfg.Graph.Tasks() {
		e.observed[t.ID] = t.Exec.Nominal()
		e.rates[t.ID] = t.Rate
		for _, s := range cfg.Graph.Successors(t.ID) {
			e.edges[edgeKey{from: t.ID, to: s}] = &edgeState{}
		}
	}
	topo, err := cfg.Graph.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	e.budgets = make([]simtime.Duration, n)
	for _, id := range topo {
		var longest simtime.Duration
		for _, p := range cfg.Graph.Predecessors(id) {
			if e.budgets[p] > longest {
				longest = e.budgets[p]
			}
		}
		e.budgets[id] = longest + cfg.Graph.Task(id).RelDeadline
	}
	if cfg.TrackingError != nil {
		dyn, ok := cfg.Scheduler.(*sched.Dynamic)
		if !ok {
			return nil, errors.New("rt: TrackingError requires a *sched.Dynamic scheduler")
		}
		e.dyn = dyn
		pdc, err := mfc.New(mfcConfigFor(cfg.ControlPeriod, dyn.GammaCap))
		if err != nil {
			return nil, fmt.Errorf("rt: %w", err)
		}
		e.pdc = pdc
		if !cfg.DisableExternal {
			adapter, err := rate.New(rate.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("rt: %w", err)
			}
			e.adapter = adapter
		}
	}
	return e, nil
}

func mfcConfigFor(period time.Duration, gammaCap float64) mfc.Config {
	cfg := mfc.DefaultConfig()
	cfg.Ts = simtime.FromDuration(period)
	cfg.ADEWindow = 5 * cfg.Ts
	cfg.Alpha = -2 * 10 / gammaCap
	cfg.UClamp = 2 * gammaCap
	return cfg
}

// Start launches workers, source tickers and (if configured) coordinators.
func (e *Executor) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("rt: already started")
	}
	e.started = true
	e.start = time.Now()
	for w := 0; w < e.cfg.NumProcs; w++ {
		e.wg.Add(1)
		go e.worker(w)
	}
	for _, src := range e.graph.Sources() {
		e.wg.Add(1)
		go e.sourceLoop(src.ID)
	}
	if e.pdc != nil {
		e.wg.Add(1)
		go e.controlLoop()
	}
	if e.adapter != nil {
		e.wg.Add(1)
		go e.adaptLoop()
	}
	return nil
}

// Stop halts all goroutines and waits for them to exit.
func (e *Executor) Stop() {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	close(e.stopCh)
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Elapsed returns the wall-clock time since Start.
func (e *Executor) Elapsed() simtime.Time {
	return simtime.Time(time.Since(e.start).Seconds())
}

// SetSourceRate retunes a source rate (clamped to the task's range).
func (e *Executor) SetSourceRate(id dag.TaskID, hz float64) (float64, error) {
	t := e.graph.Task(id)
	if t == nil {
		return 0, fmt.Errorf("rt: unknown task %d", id)
	}
	if t.MaxRate > 0 {
		if hz < t.MinRate {
			hz = t.MinRate
		}
		if hz > t.MaxRate {
			hz = t.MaxRate
		}
	} else {
		hz = t.Rate
	}
	if hz <= 0 {
		return 0, fmt.Errorf("rt: non-positive rate for %q", t.Name)
	}
	e.mu.Lock()
	e.rates[id] = hz
	e.mu.Unlock()
	return hz, nil
}

// sourceLoop emulates one sensor: periodic captures at the (adjustable)
// source rate, delivering after the sampled capture latency.
func (e *Executor) sourceLoop(id dag.TaskID) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		period := time.Duration(float64(time.Second) / e.rates[id])
		e.mu.Unlock()
		select {
		case <-e.stopCh:
			return
		case <-time.After(period):
		}
		now := e.Elapsed()
		e.mu.Lock()
		t := e.graph.Task(id)
		e.cycles[id]++
		j := &sched.Job{
			Task:        t,
			Cycle:       e.cycles[id],
			Release:     now,
			AbsDeadline: now + t.RelDeadline,
			EstExec:     e.observed[id],
			SourceTime:  now,
		}
		e.stats.Released++
		e.stats.Completed++ // captures never miss
		latency := t.Exec.Sample(e.rng, now, e.cfg.Scene(now))
		e.mu.Unlock()
		if latency > 0 {
			select {
			case <-e.stopCh:
				return
			case <-time.After(latency.ToDuration()):
			}
		}
		e.mu.Lock()
		e.propagateLocked(e.Elapsed(), j)
		e.mu.Unlock()
	}
}

// worker is one processor: it waits for an eligible job, runs it to
// completion and finalises it.
func (e *Executor) worker(w int) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		var j *sched.Job
		for {
			if e.stopped {
				e.mu.Unlock()
				return
			}
			now := e.Elapsed()
			e.purgeExpiredLocked(now)
			idx := -1
			if len(e.ready) > 0 {
				idx = e.cfg.Scheduler.Select(now, e.ready, w, e.procStateLocked(now))
			}
			if idx >= 0 {
				j = e.ready[idx]
				e.ready = append(e.ready[:idx], e.ready[idx+1:]...)
				break
			}
			e.cond.Wait()
		}
		now := e.Elapsed()
		actual := j.Task.Exec.Sample(e.rng, now, e.cfg.Scene(now))
		if actual < 0 {
			actual = 0
		}
		e.running[w] = now + actual
		e.mu.Unlock()

		e.execute(actual, now)

		done := e.Elapsed()
		e.mu.Lock()
		e.running[w] = 0
		e.observed[j.Task.ID] = done - now
		if done <= j.AbsDeadline {
			e.stats.Completed++
			e.propagateLocked(done, j)
		} else {
			e.stats.Missed++
			if j.Task.IsControl {
				e.stats.E2EDecided++
				e.stats.E2EMissed++
			}
		}
		e.notifyObserverLocked(done)
		e.mu.Unlock()
	}
}

// execute burns the sampled duration: by sleeping, or by real Hungarian
// matching sized to the scene in Busy mode.
func (e *Executor) execute(d simtime.Duration, now simtime.Time) {
	if d <= 0 {
		return
	}
	if !e.cfg.Busy {
		select {
		case <-e.stopCh:
		case <-time.After(d.ToDuration()):
		}
		return
	}
	deadline := time.Now().Add(d.ToDuration())
	n := e.cfg.Scene(now).Obstacles
	if n < 4 {
		n = 4
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for k := range cost[i] {
			cost[i][k] = float64((i*31 + k*17) % 97)
		}
	}
	for time.Now().Before(deadline) {
		if _, _, err := hungarian.Solve(cost); err != nil {
			return // unreachable with a well-formed matrix
		}
	}
}

func (e *Executor) procStateLocked(now simtime.Time) *sched.ProcState {
	st := &sched.ProcState{
		NumProcs:  e.cfg.NumProcs,
		Remaining: make([]simtime.Duration, e.cfg.NumProcs),
	}
	for i, until := range e.running {
		if until > now {
			st.Remaining[i] = until - now
		}
	}
	return st
}

func (e *Executor) purgeExpiredLocked(now simtime.Time) {
	kept := e.ready[:0]
	for _, j := range e.ready {
		if j.AbsDeadline <= now {
			e.stats.Missed++
			e.stats.Expired++
			if j.Task.IsControl {
				e.stats.E2EDecided++
				e.stats.E2EMissed++
			}
			continue
		}
		kept = append(kept, j)
	}
	e.ready = kept
}

func (e *Executor) notifyObserverLocked(now simtime.Time) {
	if obs, ok := e.cfg.Scheduler.(interface {
		Recompute(simtime.Time, []*sched.Job, *sched.ProcState)
	}); ok {
		obs.Recompute(now, e.ready, e.procStateLocked(now))
	}
}

// propagateLocked mirrors engine.propagate under the executor lock.
func (e *Executor) propagateLocked(now simtime.Time, j *sched.Job) {
	if j.Task.IsControl {
		e.stats.ControlCommands++
		e.stats.E2EDecided++
		if e.cfg.OnControl != nil {
			cmd := ControlCommand{
				Task:       j.Task,
				Cycle:      j.Cycle,
				Release:    j.Release,
				Completed:  now,
				SourceTime: j.SourceTime,
			}
			e.mu.Unlock()
			e.cfg.OnControl(cmd)
			e.mu.Lock()
		}
	}
	for _, succ := range e.graph.Successors(j.Task.ID) {
		ed := e.edges[edgeKey{from: j.Task.ID, to: succ}]
		ed.fresh = true
		ed.has = true
		ed.sourceTime = j.SourceTime
		ed.producedAt = now
		if e.graph.PrimaryPred(succ) == j.Task.ID {
			e.tryReleaseLocked(now, succ)
		}
	}
	e.notifyObserverLocked(now)
	e.cond.Broadcast()
}

func (e *Executor) tryReleaseLocked(now simtime.Time, id dag.TaskID) {
	preds := e.graph.Predecessors(id)
	for _, p := range preds {
		if !e.edges[edgeKey{from: p, to: id}].has {
			return
		}
	}
	primary := e.edges[edgeKey{from: preds[0], to: id}]
	if !primary.fresh {
		return
	}
	primary.fresh = false
	if e.cfg.MaxDataAge > 0 {
		for _, p := range preds {
			if now-e.edges[edgeKey{from: p, to: id}].producedAt > e.cfg.MaxDataAge {
				e.cycles[id]++
				e.stats.Released++
				e.stats.Missed++
				if e.graph.Task(id).IsControl {
					e.stats.E2EDecided++
					e.stats.E2EMissed++
				}
				return
			}
		}
	}
	t := e.graph.Task(id)
	e.cycles[id]++
	deadline := now + t.RelDeadline
	if e2e := primary.sourceTime + e.budgets[id]; e2e < deadline {
		deadline = e2e
	}
	if t.E2E > 0 {
		if e2e := primary.sourceTime + t.E2E; e2e < deadline {
			deadline = e2e
		}
	}
	j := &sched.Job{
		Task:        t,
		Cycle:       e.cycles[id],
		Release:     now,
		AbsDeadline: deadline,
		EstExec:     e.observed[id],
		SourceTime:  primary.sourceTime,
	}
	e.ready = append(e.ready, j)
	e.stats.Released++
}

// controlLoop is the wall-clock internal coordinator.
func (e *Executor) controlLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.ControlPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-ticker.C:
		}
		now := e.Elapsed()
		u, err := e.pdc.Step(now, e.cfg.TrackingError(now))
		if err != nil {
			continue // wall clock is monotone; spurious only on restart
		}
		e.mu.Lock()
		e.dyn.SetNominalU(u)
		e.notifyObserverLocked(now)
		e.mu.Unlock()
	}
}

// adaptLoop is the wall-clock external coordinator.
func (e *Executor) adaptLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.AdaptPeriod)
	defer ticker.Stop()
	var last Stats
	for {
		select {
		case <-e.stopCh:
			return
		case <-ticker.C:
		}
		e.mu.Lock()
		cur := e.stats
		window := Stats{
			Completed:  cur.Completed - last.Completed,
			Missed:     cur.Missed - last.Missed,
			E2EDecided: cur.E2EDecided - last.E2EDecided,
			E2EMissed:  cur.E2EMissed - last.E2EMissed,
		}
		last = cur
		regime := 1.0
		for _, t := range e.graph.Tasks() {
			nom := float64(t.Exec.Nominal())
			if nom <= 0 {
				continue
			}
			if r := float64(e.observed[t.ID]) / nom; r > regime {
				regime = r
			}
		}
		sources := make(map[*dag.Task]float64)
		for _, s := range e.graph.Sources() {
			sources[s] = e.rates[s.ID]
		}
		e.mu.Unlock()

		miss := window.MissRatio()
		if e2e := window.E2EMissRatio(); e2e > miss {
			miss = e2e
		}
		miss = math.Min(miss, 1)
		e.adapter.NoteExecTime(simtime.Duration(regime))
		proposals, err := e.adapter.Step(miss, sources)
		if err != nil {
			continue // empty source sets cannot occur on validated graphs
		}
		for _, p := range proposals {
			if p.NewRate != p.OldRate {
				if _, err := e.SetSourceRate(p.Task.ID, p.NewRate); err != nil {
					continue
				}
			}
		}
	}
}
