// Package rt is the wall-clock counterpart of the discrete-event engine: a
// goroutine-based real-time executor that runs the same task graphs under
// the same scheduling policies on actual time, standing in for the paper's
// 1:10-scale hardware testbed (DESIGN.md §5 substitution).
//
// The job-lifecycle semantics — periodic source release with off-CPU capture
// latency, data-triggered release on the primary predecessor, deadline and
// end-to-end-budget expiry, discard of late output, control-command emission
// — live in the shared internal/lifecycle kernel; this package is the
// kernel's wall-clock Backend. It contributes exactly the execution
// substrate: worker goroutines as processors, time.After for capture
// latencies, and a mutex/cond pair serializing kernel access. Execution is
// emulated either by sleeping for the sampled duration (default;
// timing-accurate and cheap) or by busy work running real Hungarian matching
// over the scene's obstacles (Busy mode; generates genuinely scene-dependent
// CPU load).
//
// The executor coordinates with the same mfc and rate controllers as the
// simulation when a tracking-error source is configured, so HCPerf's full
// hierarchy runs on wall clock too.
package rt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/hungarian"
	"hcperf/internal/lifecycle"
	"hcperf/internal/mfc"
	"hcperf/internal/rate"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// Canonical lifecycle types, re-exported so existing callers keep compiling
// unchanged.
type (
	// ControlCommand describes one completed control-task job.
	ControlCommand = lifecycle.ControlCommand
	// Stats aggregates executor-wide outcomes.
	Stats = lifecycle.Stats
)

// DefaultStopTimeout bounds how long Stop waits for goroutines to exit.
const DefaultStopTimeout = 10 * time.Second

// Config configures an Executor.
type Config struct {
	// Graph is the validated task graph to execute.
	Graph *dag.Graph
	// Scheduler is the dispatch policy (pass a *sched.Dynamic to enable
	// HCPerf coordination together with TrackingError).
	Scheduler sched.Scheduler
	// NumProcs is the worker count (M >= 1).
	NumProcs int
	// Seed seeds execution-time sampling.
	Seed int64
	// Scene supplies the runtime scene by wall-clock offset; nil means
	// exectime.NominalScene.
	Scene func(elapsed simtime.Time) exectime.Scene
	// Busy selects busy-work execution (real Hungarian matching) instead
	// of sleeping.
	Busy bool
	// MaxDataAge bounds input ages as in the engine (0 disables).
	MaxDataAge simtime.Duration
	// OnControl observes emitted control commands (called off the worker
	// goroutines' critical section but potentially concurrently).
	OnControl func(cmd ControlCommand)
	// Tracer optionally receives the structured lifecycle event stream.
	// It is invoked with the executor lock held and must not block.
	Tracer lifecycle.Tracer
	// TrackingError, when set together with a *sched.Dynamic scheduler,
	// enables the HCPerf coordinators on wall clock.
	TrackingError func(elapsed simtime.Time) float64
	// DisableExternal turns off the Task Rate Adapter.
	DisableExternal bool
	// ControlPeriod is the internal-coordinator period (default 100 ms).
	ControlPeriod time.Duration
	// AdaptPeriod is the external-coordinator period (default 1 s).
	AdaptPeriod time.Duration
}

// Executor runs a task graph on wall-clock time.
type Executor struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	k         *lifecycle.Kernel
	running   []simtime.Time  // per-worker expected finish (elapsed time)
	procState sched.ProcState // reused snapshot, guarded by mu
	stopped   bool

	start   time.Time
	started bool
	wg      sync.WaitGroup
	stopCh  chan struct{}

	pdc     *mfc.Controller
	adapter *rate.Adapter
	dyn     *sched.Dynamic
}

// rtBackend adapts the Executor onto lifecycle.Backend: capture latencies
// are timer goroutines, waking idle processors is a cond broadcast. Every
// method is invoked by the kernel with e.mu held.
type rtBackend struct {
	e *Executor
}

// DeliverAfter implements lifecycle.Backend. The delivery goroutine joins
// the executor's WaitGroup; Add is safe because the calling source loop is
// itself still registered, so the counter cannot be zero here.
func (b rtBackend) DeliverAfter(now simtime.Time, d simtime.Duration, fn func(at simtime.Time)) {
	e := b.e
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		if d > 0 {
			select {
			case <-e.stopCh:
				return
			case <-time.After(d.ToDuration()):
			}
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.stopped {
			return
		}
		fn(e.Elapsed())
	}()
}

// Wake implements lifecycle.Backend.
func (b rtBackend) Wake(now simtime.Time) { b.e.cond.Broadcast() }

// ProcState implements lifecycle.Backend. Every call arrives with e.mu
// held, so the snapshot is reused across scheduling decisions instead of
// being allocated per call (see the Backend non-retention contract).
func (b rtBackend) ProcState(now simtime.Time) *sched.ProcState {
	e := b.e
	st := &e.procState
	for i, until := range e.running {
		var r simtime.Duration
		if until > now {
			r = until - now
		}
		st.Remaining[i] = r
	}
	return st
}

// New validates cfg and builds an executor.
func New(cfg Config) (*Executor, error) {
	if cfg.NumProcs < 1 {
		return nil, fmt.Errorf("rt: NumProcs %d < 1", cfg.NumProcs)
	}
	if cfg.Scene == nil {
		cfg.Scene = func(simtime.Time) exectime.Scene { return exectime.NominalScene() }
	}
	if cfg.ControlPeriod <= 0 {
		cfg.ControlPeriod = 100 * time.Millisecond
	}
	if cfg.AdaptPeriod <= 0 {
		cfg.AdaptPeriod = time.Second
	}
	e := &Executor{
		cfg:     cfg,
		running: make([]simtime.Time, cfg.NumProcs),
		procState: sched.ProcState{
			NumProcs:  cfg.NumProcs,
			Remaining: make([]simtime.Duration, cfg.NumProcs),
		},
		stopCh: make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	onControl := cfg.OnControl
	k, err := lifecycle.NewKernel(lifecycle.Config{
		Graph:      cfg.Graph,
		Scheduler:  cfg.Scheduler,
		Seed:       cfg.Seed,
		Scene:      cfg.Scene,
		MaxDataAge: cfg.MaxDataAge,
		OnControl: func(cmd ControlCommand) {
			if onControl == nil {
				return
			}
			// The kernel runs under e.mu; release it around the user
			// callback so observers may call back into the executor.
			e.mu.Unlock()
			onControl(cmd)
			e.mu.Lock()
		},
		Tracer: cfg.Tracer,
	}, rtBackend{e})
	if err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	e.k = k
	if cfg.TrackingError != nil {
		dyn, ok := cfg.Scheduler.(*sched.Dynamic)
		if !ok {
			return nil, errors.New("rt: TrackingError requires a *sched.Dynamic scheduler")
		}
		e.dyn = dyn
		pdc, err := mfc.New(mfcConfigFor(cfg.ControlPeriod, dyn.GammaCap))
		if err != nil {
			return nil, fmt.Errorf("rt: %w", err)
		}
		e.pdc = pdc
		if !cfg.DisableExternal {
			adapter, err := rate.New(rate.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("rt: %w", err)
			}
			e.adapter = adapter
		}
	}
	return e, nil
}

func mfcConfigFor(period time.Duration, gammaCap float64) mfc.Config {
	cfg := mfc.DefaultConfig()
	cfg.Ts = simtime.FromDuration(period)
	cfg.ADEWindow = 5 * cfg.Ts
	cfg.Alpha = -2 * 10 / gammaCap
	cfg.UClamp = 2 * gammaCap
	return cfg
}

// Start launches workers, source tickers and (if configured) coordinators.
func (e *Executor) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("rt: already started")
	}
	e.started = true
	e.start = time.Now()
	for w := 0; w < e.cfg.NumProcs; w++ {
		e.wg.Add(1)
		go e.worker(w)
	}
	for _, src := range e.k.Graph().Sources() {
		e.wg.Add(1)
		go e.sourceLoop(src.ID)
	}
	if e.pdc != nil {
		e.wg.Add(1)
		go e.controlLoop()
	}
	if e.adapter != nil {
		e.wg.Add(1)
		go e.adaptLoop()
	}
	return nil
}

// Shutdown signals every goroutine to stop and waits until they exit or ctx
// is done, whichever comes first. A wedged worker (e.g. mid busy-burn) makes
// Shutdown return ctx.Err() instead of hanging; the straggler still exits
// once its current job finishes. Shutdown is idempotent.
func (e *Executor) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return nil
	}
	if !e.stopped {
		e.stopped = true
		close(e.stopCh)
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("rt: shutdown: %w", ctx.Err())
	}
}

// Stop halts all goroutines, waiting up to DefaultStopTimeout for them to
// exit.
func (e *Executor) Stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultStopTimeout)
	defer cancel()
	return e.Shutdown(ctx)
}

// Stats returns a snapshot of the counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.k.Stats()
}

// Elapsed returns the wall-clock time since Start.
func (e *Executor) Elapsed() simtime.Time {
	return simtime.Time(time.Since(e.start).Seconds())
}

// SetSourceRate retunes a source rate (clamped to the task's range).
func (e *Executor) SetSourceRate(id dag.TaskID, hz float64) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	applied, err := e.k.SetRate(id, hz)
	if err != nil {
		return 0, fmt.Errorf("rt: %w", err)
	}
	return applied, nil
}

// sourceLoop emulates one sensor: periodic captures at the (adjustable)
// source rate; the kernel delivers each capture downstream after its sampled
// latency via DeliverAfter.
func (e *Executor) sourceLoop(id dag.TaskID) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		period := time.Duration(float64(time.Second) / e.k.Rate(id))
		e.mu.Unlock()
		select {
		case <-e.stopCh:
			return
		case <-time.After(period):
		}
		e.mu.Lock()
		if e.stopped {
			e.mu.Unlock()
			return
		}
		e.k.SourceFired(e.Elapsed(), id)
		e.mu.Unlock()
	}
}

// worker is one processor: it waits for an eligible job, runs it to
// completion and finalises it through the kernel.
func (e *Executor) worker(w int) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		var j *sched.Job
		for {
			if e.stopped {
				e.mu.Unlock()
				return
			}
			now := e.Elapsed()
			e.k.PurgeExpired(now)
			j = e.k.Next(now, w)
			if j != nil {
				break
			}
			e.cond.Wait()
		}
		now := e.Elapsed()
		actual := e.k.SampleExec(now, j.Task)
		e.running[w] = now + actual
		e.mu.Unlock()

		e.execute(actual, now)

		done := e.Elapsed()
		e.mu.Lock()
		e.running[w] = 0
		// The observed execution time is the wall clock actually spent,
		// not the sampled target: sleep overshoot and busy-burn jitter
		// feed back into c_i like on real hardware.
		e.k.Complete(done, w, j, done-now)
		e.mu.Unlock()
	}
}

// execute burns the sampled duration: by sleeping, or by real Hungarian
// matching sized to the scene in Busy mode. The busy burn deliberately
// ignores stopCh — it models non-preemptable CPU-bound work — which is why
// Shutdown is deadline-bounded.
func (e *Executor) execute(d simtime.Duration, now simtime.Time) {
	if d <= 0 {
		return
	}
	if !e.cfg.Busy {
		select {
		case <-e.stopCh:
		case <-time.After(d.ToDuration()):
		}
		return
	}
	deadline := time.Now().Add(d.ToDuration())
	n := e.cfg.Scene(now).Obstacles
	if n < 4 {
		n = 4
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for k := range cost[i] {
			cost[i][k] = float64((i*31 + k*17) % 97)
		}
	}
	var solver hungarian.Solver // reused across iterations: the burn loop allocates nothing
	for time.Now().Before(deadline) {
		if _, _, err := solver.Solve(cost); err != nil {
			return // unreachable with a well-formed matrix
		}
	}
}

// controlLoop is the wall-clock internal coordinator.
func (e *Executor) controlLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.ControlPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-ticker.C:
		}
		now := e.Elapsed()
		u, err := e.pdc.Step(now, e.cfg.TrackingError(now))
		if err != nil {
			continue // wall clock is monotone; spurious only on restart
		}
		e.mu.Lock()
		e.dyn.SetNominalU(u)
		e.k.RefreshObserver(now)
		e.mu.Unlock()
	}
}

// adaptLoop is the wall-clock external coordinator.
func (e *Executor) adaptLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.AdaptPeriod)
	defer ticker.Stop()
	var last Stats
	for {
		select {
		case <-e.stopCh:
			return
		case <-ticker.C:
		}
		e.mu.Lock()
		cur := e.k.Stats()
		window := Stats{
			Completed:  cur.Completed - last.Completed,
			Missed:     cur.Missed - last.Missed,
			E2EDecided: cur.E2EDecided - last.E2EDecided,
			E2EMissed:  cur.E2EMissed - last.E2EMissed,
		}
		last = cur
		regime := 1.0
		for _, t := range e.k.Graph().Tasks() {
			nom := float64(t.Exec.Nominal())
			if nom <= 0 {
				continue
			}
			if r := float64(e.k.ObservedExec(t.ID)) / nom; r > regime {
				regime = r
			}
		}
		sources := make(map[*dag.Task]float64)
		for _, s := range e.k.Graph().Sources() {
			sources[s] = e.k.Rate(s.ID)
		}
		e.mu.Unlock()

		miss := window.MissRatio()
		if e2e := window.E2EMissRatio(); e2e > miss {
			miss = e2e
		}
		miss = math.Min(miss, 1)
		e.adapter.NoteExecTime(simtime.Duration(regime))
		proposals, err := e.adapter.Step(miss, sources)
		if err != nil {
			continue // empty source sets cannot occur on validated graphs
		}
		for _, p := range proposals {
			if p.NewRate != p.OldRate {
				if _, err := e.SetSourceRate(p.Task.ID, p.NewRate); err != nil {
					continue
				}
			}
		}
	}
}
