package rt

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

const ms = simtime.Millisecond

// fastGraph is a small chain with millisecond-scale tasks so wall-clock
// tests finish quickly.
func fastGraph(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New()
	add := func(task dag.Task) {
		if _, err := g.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	add(dag.Task{
		Name: "sensor", Priority: 3, RelDeadline: 30 * ms,
		Rate: 50, MinRate: 20, MaxRate: 100,
		Exec: exectime.Constant(0.2 * ms),
	})
	add(dag.Task{
		Name: "perceive", Priority: 2, RelDeadline: 40 * ms,
		Exec: exectime.Constant(1 * ms),
	})
	add(dag.Task{
		Name: "control", Priority: 1, RelDeadline: 30 * ms, IsControl: true,
		Exec: exectime.Constant(0.5 * ms),
	})
	for _, e := range [][2]string{{"sensor", "perceive"}, {"perceive", "control"}} {
		if err := g.AddEdgeByName(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	g := fastGraph(t)
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "nil graph", cfg: Config{Scheduler: sched.EDF{}, NumProcs: 1}},
		{name: "nil scheduler", cfg: Config{Graph: g, NumProcs: 1}},
		{name: "zero procs", cfg: Config{Graph: g, Scheduler: sched.EDF{}}},
		{name: "tracking error without dynamic", cfg: Config{
			Graph: g, Scheduler: sched.EDF{}, NumProcs: 1,
			TrackingError: func(simtime.Time) float64 { return 0 },
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestPipelineRunsOnWallClock(t *testing.T) {
	g := fastGraph(t)
	var cmds atomic.Uint64
	var lastE2E atomic.Int64
	ex, err := New(Config{
		Graph:     g,
		Scheduler: sched.EDF{},
		NumProcs:  2,
		Seed:      1,
		OnControl: func(cmd ControlCommand) {
			cmds.Add(1)
			lastE2E.Store(int64(cmd.EndToEndLatency().ToDuration()))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(); err == nil {
		t.Error("double Start accepted")
	}
	time.Sleep(400 * time.Millisecond)
	ex.Stop()
	ex.Stop() // idempotent

	st := ex.Stats()
	if got := cmds.Load(); got < 5 {
		t.Errorf("got %d control commands in 400ms at 50 Hz, want >= 5", got)
	}
	if st.ControlCommands != cmds.Load() {
		t.Errorf("counter %d != callback count %d", st.ControlCommands, cmds.Load())
	}
	if st.MissRatio() > 0.2 {
		t.Errorf("miss ratio %.2f on a trivially feasible graph", st.MissRatio())
	}
	// End-to-end latency should be a few ms (0.2+1+0.5 plus scheduling).
	if e2e := time.Duration(lastE2E.Load()); e2e <= 0 || e2e > 100*time.Millisecond {
		t.Errorf("end-to-end latency %v out of range", e2e)
	}
}

func TestDeadlineMissesUnderOverloadWallClock(t *testing.T) {
	g := dag.New()
	if _, err := g.AddTask(dag.Task{
		Name: "sensor", Priority: 2, RelDeadline: 20 * ms,
		Rate: 100, MinRate: 100, MaxRate: 100,
		Exec: exectime.Constant(0.1 * ms),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddTask(dag.Task{
		Name: "heavy", Priority: 1, RelDeadline: 15 * ms, IsControl: true,
		Exec: exectime.Constant(25 * ms), // cannot meet its deadline
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeByName("sensor", "heavy"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ex, err := New(Config{Graph: g, Scheduler: sched.EDF{}, NumProcs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	ex.Stop()
	if st := ex.Stats(); st.Missed == 0 {
		t.Errorf("no misses under structural overload: %+v", st)
	}
}

func TestSetSourceRateWallClock(t *testing.T) {
	g := fastGraph(t)
	ex, err := New(Config{Graph: g, Scheduler: sched.EDF{}, NumProcs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sensor := g.TaskByName("sensor")
	got, err := ex.SetSourceRate(sensor.ID, 500)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("rate clamped to %v, want 100", got)
	}
	if _, err := ex.SetSourceRate(999, 10); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestHCPerfCoordinationOnWallClock(t *testing.T) {
	g := fastGraph(t)
	dyn := sched.NewDynamic(0.02)
	ex, err := New(Config{
		Graph:     g,
		Scheduler: dyn,
		NumProcs:  2,
		Seed:      1,
		// A persistent tracking error drives u upward.
		TrackingError: func(simtime.Time) float64 { return 2 },
		ControlPeriod: 20 * time.Millisecond,
		AdaptPeriod:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	ex.Stop()
	if st := ex.Stats(); st.ControlCommands == 0 {
		t.Error("no control commands under coordination")
	}
	if u := dyn.NominalU(); u <= 0 {
		t.Errorf("nominal u = %v after sustained error, want > 0", u)
	}
	if g := dyn.Gamma(); g < 0 || g > dyn.GammaCap {
		t.Errorf("γ = %v outside [0, cap]", g)
	}
}

func TestBusyModeBurnsSceneDependentTime(t *testing.T) {
	if testing.Short() {
		t.Skip("busy-wait test")
	}
	g := fastGraph(t)
	ex, err := New(Config{
		Graph:     g,
		Scheduler: sched.EDF{},
		NumProcs:  1,
		Seed:      1,
		Busy:      true,
		Scene: func(simtime.Time) exectime.Scene {
			return exectime.Scene{Obstacles: 8, LoadFactor: 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	ex.Stop()
	if st := ex.Stats(); st.ControlCommands == 0 {
		t.Errorf("busy mode produced no commands: %+v", st)
	}
}

// TestShutdownBoundedWithWedgedWorker pins the bounded-shutdown contract: a
// worker stuck in a non-preemptable busy burn must not block Shutdown past
// its context deadline, and the straggler must still drain once the burn
// ends.
func TestShutdownBoundedWithWedgedWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("busy-wait test")
	}
	g := dag.New()
	if _, err := g.AddTask(dag.Task{
		Name: "sensor", Priority: 2, RelDeadline: 5 * simtime.Second,
		Rate: 100, MinRate: 100, MaxRate: 100,
		Exec: exectime.Constant(0.1 * ms),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddTask(dag.Task{
		Name: "heavy", Priority: 1, RelDeadline: 5 * simtime.Second, IsControl: true,
		Exec: exectime.Constant(800 * ms),
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeByName("sensor", "heavy"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ex, err := New(Config{Graph: g, Scheduler: sched.EDF{}, NumProcs: 1, Seed: 1, Busy: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the worker wedge in its 800ms burn

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	begin := time.Now()
	err = ex.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown returned nil while a worker was wedged")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown error = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(begin); waited > time.Second {
		t.Errorf("Shutdown blocked %v despite a 150ms deadline", waited)
	}

	// Once the burn finishes, the straggler exits and a second Shutdown
	// drains cleanly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := ex.Shutdown(ctx2); err != nil {
		t.Errorf("drain after burn: %v", err)
	}
}

func TestStatsRatios(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 || s.E2EMissRatio() != 0 {
		t.Error("empty stats should report zero ratios")
	}
	s = Stats{Completed: 8, Missed: 2, E2EDecided: 4, E2EMissed: 1}
	if got := s.MissRatio(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("MissRatio = %v, want 0.2", got)
	}
	if got := s.E2EMissRatio(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("E2EMissRatio = %v, want 0.25", got)
	}
}
