#!/bin/sh
# race_pkgs_guard.sh RACE_PKGS RACE_EXEMPT
#
# Fails loudly when a package under internal/ is listed in neither
# RACE_PKGS nor RACE_EXEMPT (both space-separated ./internal/<pkg>/...
# patterns from the Makefile). The point: `make race` only races the
# packages someone remembered to list, so a freshly added internal
# package would otherwise skip the race detector silently — this guard
# turns that omission into a red build with instructions instead.
set -eu

covered=" $1 "
exempt=" $2 "
status=0
for dir in internal/*/; do
    pkg="./${dir%/}/..."
    case "$covered" in *" $pkg "*) continue ;; esac
    case "$exempt" in *" $pkg "*) continue ;; esac
    echo "race guard: $pkg is in neither RACE_PKGS nor RACE_EXEMPT." >&2
    echo "  Add it to RACE_PKGS in the Makefile if it owns goroutines/locks," >&2
    echo "  or to RACE_EXEMPT if it is provably single-threaded." >&2
    status=1
done
exit $status
