package hcperf_test

// Benchmark harness: one benchmark per table and figure of the HCPerf
// evaluation (paper §VII), plus micro-benchmarks of the framework's hot
// paths. Each table/figure benchmark regenerates the corresponding
// experiment end to end and reports the headline quantity as a custom
// metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Absolute driving-performance values
// depend on the substrate (see EXPERIMENTS.md); the reported metrics make
// the orderings visible directly in the benchmark output.

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/experiment"
	"hcperf/internal/hungarian"
	"hcperf/internal/mfc"
	"hcperf/internal/runner"
	"hcperf/internal/scenario"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(id, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Motivation regenerates the motivation experiment (Fig. 4):
// the red-light scenario under Apollo scheduling, ending in a collision.
func BenchmarkFig4Motivation(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5ToySchedule regenerates the Fig. 5 toy schedule comparison.
func BenchmarkFig5ToySchedule(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig12ExecTimes regenerates the execution-time characterisation.
func BenchmarkFig12ExecTimes(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13CarFollowing regenerates the car-following time series for
// all five schemes (Fig. 13(a)-(d)).
func BenchmarkFig13CarFollowing(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkTable2SpeedRMS regenerates Table II and reports each scheme's
// RMS speed tracking error as a custom metric.
func BenchmarkTable2SpeedRMS(b *testing.B) {
	var results map[scenario.Scheme]*scenario.CarFollowingResult
	for i := 0; i < b.N; i++ {
		results = make(map[scenario.Scheme]*scenario.CarFollowingResult)
		for _, s := range scenario.AllSchemes() {
			r, err := scenario.RunCarFollowing(scenario.CarFollowingConfig{Scheme: s, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			results[s] = r
		}
	}
	for s, r := range results {
		b.ReportMetric(r.SpeedErrRMS, "speedRMS_"+s.String())
	}
}

// BenchmarkTable3DistanceRMS regenerates Table III.
func BenchmarkTable3DistanceRMS(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig14LaneKeeping regenerates the lane-keeping offset series.
func BenchmarkFig14LaneKeeping(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkTable4LateralRMS regenerates Table IV and reports each scheme's
// RMS lateral offset as a custom metric.
func BenchmarkTable4LateralRMS(b *testing.B) {
	offsets := make(map[scenario.Scheme]float64)
	for i := 0; i < b.N; i++ {
		for _, s := range scenario.AllSchemes() {
			r, err := scenario.RunLaneKeeping(scenario.LaneKeepingConfig{Scheme: s, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			offsets[s] = r.OffsetRMS
		}
	}
	for s, v := range offsets {
		b.ReportMetric(v*1000, "offsetRMSmm_"+s.String())
	}
}

// BenchmarkFig15Hardware regenerates the hardware-testbed emulation series.
func BenchmarkFig15Hardware(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkTable5HardwareSpeedRMS regenerates Table V.
func BenchmarkTable5HardwareSpeedRMS(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6HardwareDistRMS regenerates Table VI.
func BenchmarkTable6HardwareDistRMS(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFig16DrivingProcess regenerates the jam driving-process overview.
func BenchmarkFig16DrivingProcess(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17Responsiveness regenerates the traffic-jam study.
func BenchmarkFig17Responsiveness(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkFig18Ablation regenerates the internal-vs-full ablation.
func BenchmarkFig18Ablation(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkOverheadCoordinatorStep measures the coordinator's own per-step
// cost (§VII-E) directly: one full car-following run per iteration, with
// the mean wall-clock cost per coordination step reported as a metric.
func BenchmarkOverheadCoordinatorStep(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := scenario.RunCarFollowing(scenario.CarFollowingConfig{
			Scheme: scenario.SchemeHCPerf, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		oh := r.Overhead
		mean = oh.Mean()
	}
	b.ReportMetric(mean*1e6, "µs/coord-step")
}

// --- Ablation benchmarks (design-choice studies beyond the paper) ---

// BenchmarkAblateGammaCap sweeps the γ cap (internal coordinator only).
func BenchmarkAblateGammaCap(b *testing.B) { benchExperiment(b, "ablate-gammacap") }

// BenchmarkAblateLatencyGuards ablates the e2e deadline and input-age bound.
func BenchmarkAblateLatencyGuards(b *testing.B) { benchExperiment(b, "ablate-e2e") }

// BenchmarkAblateDataAge toggles the input-age validity bound per scheme.
func BenchmarkAblateDataAge(b *testing.B) { benchExperiment(b, "ablate-dataage") }

// BenchmarkSweepProcs sweeps the processor count for EDF vs HCPerf.
func BenchmarkSweepProcs(b *testing.B) { benchExperiment(b, "sweep-procs") }

// BenchmarkExtAEB runs the emergency-braking extension.
func BenchmarkExtAEB(b *testing.B) { benchExperiment(b, "ext-aeb") }

// BenchmarkExtDualControl runs the dual-sink control extension.
func BenchmarkExtDualControl(b *testing.B) { benchExperiment(b, "ext-dual") }

// --- Parallel runner benchmarks ---

// benchSweep runs the five-scheme car-following sweep (the workhorse unit
// behind Fig. 13 and Tables II/III) through the worker-pool runner with the
// given worker count; 0 selects GOMAXPROCS. BenchmarkSweepSerial vs
// BenchmarkSweepParallel measures the end-to-end speedup of `-parallel`;
// the quotient of their ns/op is the number EXPERIMENTS.md records.
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	schemes := scenario.AllSchemes()
	for i := 0; i < b.N; i++ {
		results, err := runner.Map(context.Background(), workers, schemes,
			func(_ context.Context, s scenario.Scheme) (*scenario.CarFollowingResult, error) {
				return scenario.RunCarFollowing(scenario.CarFollowingConfig{Scheme: s, Seed: 1})
			})
		if err != nil {
			b.Fatal(err)
		}
		for j, r := range results {
			if r == nil {
				b.Fatalf("scheme %v returned no result", schemes[j])
			}
		}
	}
}

// BenchmarkSweepSerial is the single-worker reference sweep.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel fans the same sweep out across GOMAXPROCS workers.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSuiteSerial and BenchmarkSuiteParallel do the same at suite
// granularity: all registered experiments, with sweep parallelism matching
// the outer fan-out (exactly what `hcperf-sim -mode suite -parallel N` runs).
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	experiment.SetParallelism(workers)
	defer experiment.SetParallelism(1)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAll(context.Background(), 1, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSerial runs every experiment on one worker.
func BenchmarkSuiteSerial(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteParallel runs every experiment across GOMAXPROCS workers.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }

// --- Micro-benchmarks of the hot paths ---

func benchJobs(n int, rng *rand.Rand) []*sched.Job {
	jobs := make([]*sched.Job, n)
	for i := range jobs {
		d := simtime.Duration(0.02 + rng.Float64()*0.08)
		jobs[i] = &sched.Job{
			Task: &dag.Task{
				ID:          dag.TaskID(i),
				Name:        "t" + strconv.Itoa(i),
				Priority:    rng.Intn(23) + 1,
				RelDeadline: d,
				Exec:        exectime.Constant(simtime.Duration(0.002 + rng.Float64()*0.02)),
			},
			Release:     simtime.Time(rng.Float64() * 0.01),
			AbsDeadline: simtime.Time(rng.Float64()*0.01) + d,
			EstExec:     simtime.Duration(0.002 + rng.Float64()*0.02),
		}
	}
	return jobs
}

// BenchmarkDynamicSelect measures HCPerf's per-dispatch decision.
func BenchmarkDynamicSelect(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run("queue="+strconv.Itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			jobs := benchJobs(n, rng)
			dyn := sched.NewDynamic(0.02)
			dyn.SetNominalU(0.01)
			st := &sched.ProcState{NumProcs: 2, Remaining: make([]simtime.Duration, 2)}
			dyn.Recompute(0, jobs, st)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if idx := dyn.Select(0, jobs, 0, st); idx < 0 {
					b.Fatal("no job selected")
				}
			}
		})
	}
}

// BenchmarkGammaSearch measures the Eq. 11 γmax bisection.
func BenchmarkGammaSearch(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run("queue="+strconv.Itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			jobs := benchJobs(n, rng)
			dyn := sched.NewDynamic(0.02)
			dyn.SetNominalU(0.01)
			st := &sched.ProcState{NumProcs: 2, Remaining: make([]simtime.Duration, 2)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dyn.Recompute(0, jobs, st)
			}
		})
	}
}

// BenchmarkMFCStep measures one Performance Directed Controller step.
func BenchmarkMFCStep(b *testing.B) {
	c, err := mfc.New(mfc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Step(simtime.Time(i)*100*simtime.Millisecond, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHungarianFusion measures the real O(n^3) matching that drives
// the configurable-sensor-fusion execution model.
func BenchmarkHungarianFusion(b *testing.B) {
	for _, n := range []int{10, 23, 42} {
		b.Run("obstacles="+strconv.Itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			cost := make([][]float64, n)
			for i := range cost {
				cost[i] = make([]float64, n)
				for j := range cost[i] {
					cost[i][j] = rng.Float64()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := hungarian.Solve(cost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHungarianSolverReuse measures the same matching through a
// reused hungarian.Solver: the workspace persists across calls, so steady
// state allocates nothing. Comparing against BenchmarkHungarianFusion
// (which uses the one-shot package Solve) shows exactly what workspace
// reuse buys on the fusion hot path.
func BenchmarkHungarianSolverReuse(b *testing.B) {
	for _, n := range []int{10, 23, 42} {
		b.Run("obstacles="+strconv.Itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			cost := make([][]float64, n)
			for i := range cost {
				cost[i] = make([]float64, n)
				for j := range cost[i] {
					cost[i][j] = rng.Float64()
				}
			}
			var s hungarian.Solver
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Solve(cost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSecond measures simulating one second of the 23-task
// stack under each scheduling policy.
func BenchmarkEngineSecond(b *testing.B) {
	policies := map[string]func() sched.Scheduler{
		"EDF":    func() sched.Scheduler { return sched.EDF{} },
		"HPF":    func() sched.Scheduler { return sched.HPF{} },
		"HCPerf": func() sched.Scheduler { return sched.NewDynamic(0) },
	}
	for name, mk := range policies {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := dag.ADGraph23()
				if err != nil {
					b.Fatal(err)
				}
				q := simtime.NewEventQueue()
				eng, err := engine.New(engine.Config{
					Graph:     g,
					Scheduler: mk(),
					NumProcs:  2,
					Queue:     q,
					Seed:      int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Start(); err != nil {
					b.Fatal(err)
				}
				if err := q.RunUntil(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
